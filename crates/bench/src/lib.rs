//! Shared workload builders for the benchmark suite.
//!
//! Each function builds one of the workloads named in DESIGN.md's
//! experiment index (B1–B7, S1); the Criterion benches in `benches/`
//! sweep their parameters. Keeping the builders here lets the
//! experiment-table generator and the benches share exactly the same
//! code paths.

use conch_actors::{spawn_actor_on, Mailbox};
use conch_combinators::{modify_mvar, modify_mvar_naive, timeout};
use conch_explore::{ExploreConfig, Explorer, Reduction, Report, RunOutcome, Strategy, TestCase};
use conch_httpd::client::good_client;
use conch_httpd::http::Response;
use conch_httpd::net::Listener;
use conch_httpd::parallel::{wall_parallel_load, WallConfig};
use conch_httpd::pool::{start_pooled, PoolConfig};
use conch_httpd::server::{handler, start, Handler, ServerConfig, StatsSnapshot};
use conch_httpd::shard::{sharded_load, sharded_load_skewed, LoadConfig};
use conch_runtime::io::{for_each, sequence, Io};
use conch_runtime::prelude::*;
use conch_runtime::timer::{TimerEntry, TimerWheel};

/// B1: a mask-recursive loop — `block (…; unblock (…; block …))` — of
/// the §8.1 shape, `n` levels deep. With frame collapse the stack stays
/// O(1); without it, O(n).
pub fn mask_recursive_loop(n: u64) -> Io<()> {
    if n == 0 {
        Io::unit()
    } else {
        Io::<()>::block(Io::<()>::unblock(
            Io::unit().and_then(move |_| mask_recursive_loop(n - 1)),
        ))
    }
}

/// Runs a program on a fresh runtime with the given config; panics on
/// error (benches must not silently fail).
pub fn run<T: FromValue>(config: RuntimeConfig, io: Io<T>) -> (T, Runtime) {
    let mut rt = Runtime::with_config(config);
    let v = rt.run(io).expect("bench workload must succeed");
    (v, rt)
}

/// B2: kill a victim and wait for confirmation, with the asynchronous
/// `throwTo` plus an MVar acknowledgement.
pub fn kill_round_async() -> Io<()> {
    Io::new_empty_mvar::<i64>().and_then(|ack| {
        let victim = Io::<()>::unblock(Io::compute(u64::MAX)).catch(move |_| ack.put(1));
        Io::<ThreadId>::block(Io::fork(victim)).and_then(move |v| {
            Io::throw_to(v, Exception::kill_thread())
                .then(ack.take())
                .map(|_| ())
        })
    })
}

/// B2: the same round with the §9 synchronous `throwTo` (its return is
/// already the delivery guarantee, but we keep the ack for symmetry).
pub fn kill_round_sync() -> Io<()> {
    Io::new_empty_mvar::<i64>().and_then(|ack| {
        let victim = Io::<()>::unblock(Io::compute(u64::MAX)).catch(move |_| ack.put(1));
        Io::<ThreadId>::block(Io::fork(victim)).and_then(move |v| {
            Io::throw_to_sync(v, Exception::kill_thread())
                .then(ack.take())
                .map(|_| ())
        })
    })
}

/// B2: fire-and-forget — `n` asynchronous throws at a resilient victim
/// that catches each one and keeps going.
pub fn spray_async(n: u64) -> Io<()> {
    fn resilient(lives: u64) -> Io<()> {
        if lives == 0 {
            Io::unit()
        } else {
            Io::<()>::unblock(Io::compute(u64::MAX)).catch(move |_| resilient(lives - 1))
        }
    }
    Io::<ThreadId>::block(Io::fork(resilient(n))).and_then(move |v| {
        conch_runtime::io::replicate(n, move || {
            Io::throw_to(v, Exception::kill_thread()).then(Io::yield_now())
        })
    })
}

/// B3: a polling victim — computes in chunks of `poll_interval` steps
/// with an explicit safe point between chunks — killed by the parent.
/// Returns once the victim has died. Use with
/// [`DeliveryMode::Polling`](conch_runtime::DeliveryMode).
pub fn polled_victim_round(poll_interval: u64) -> Io<()> {
    fn worker(poll_interval: u64) -> Io<()> {
        Io::compute(poll_interval)
            .then(Io::poll_safe_point())
            .and_then(move |_| worker(poll_interval))
    }
    Io::new_empty_mvar::<i64>().and_then(move |ack| {
        let victim = worker(poll_interval).catch(move |_| ack.put(1));
        Io::fork(victim).and_then(move |v| {
            // Let the victim get going before the kill, so the latency we
            // measure is a mid-computation delivery.
            Io::yield_now()
                .then(Io::throw_to(v, Exception::kill_thread()))
                .then(ack.take())
                .map(|_| ())
        })
    })
}

/// B3 overhead side: pure computation of `total` steps, broken into
/// chunks with a safe point between each — the cost polling imposes even
/// when no exception ever arrives. `chunk = 0` means no polling at all.
pub fn polling_overhead(total: u64, chunk: u64) -> Io<()> {
    if chunk == 0 {
        return Io::compute(total);
    }
    fn go(left: u64, chunk: u64) -> Io<()> {
        if left == 0 {
            Io::unit()
        } else {
            let step = chunk.min(left);
            Io::compute(step)
                .then(Io::poll_safe_point())
                .and_then(move |_| go(left - step, chunk))
        }
    }
    go(total, chunk)
}

/// B4: `n` uncontended take/put pairs on one MVar.
pub fn mvar_uncontended(n: u64) -> Io<i64> {
    Io::new_mvar(0_i64).and_then(move |m| {
        conch_runtime::io::replicate(n, move || m.take().and_then(move |v| m.put(v + 1)))
            .then(m.take())
    })
}

/// B4: the same updates through the §5.2-safe [`modify_mvar`].
pub fn mvar_safe_updates(n: u64) -> Io<i64> {
    Io::new_mvar(0_i64).and_then(move |m| {
        conch_runtime::io::replicate(n, move || modify_mvar(m, |v| Io::pure(v + 1))).then(m.take())
    })
}

/// B4: the same updates through the racy [`modify_mvar_naive`] baseline.
pub fn mvar_naive_updates(n: u64) -> Io<i64> {
    Io::new_mvar(0_i64).and_then(move |m| {
        conch_runtime::io::replicate(n, move || modify_mvar_naive(m, |v| Io::pure(v + 1)))
            .then(m.take())
    })
}

/// B4: a producer/consumer ping-pong across two threads, `n` rounds.
pub fn mvar_pingpong(n: u64) -> Io<()> {
    Io::new_empty_mvar::<i64>().and_then(move |ping| {
        Io::new_empty_mvar::<i64>().and_then(move |pong| {
            let echoer =
                conch_runtime::io::replicate(n, move || ping.take().and_then(move |v| pong.put(v)));
            Io::fork(echoer).and_then(move |_| {
                conch_runtime::io::replicate(n, move || ping.put(1).then(pong.take()))
            })
        })
    })
}

/// B5: `depth` nested timeouts around `work` compute steps. All budgets
/// are generous, so the work always completes; this measures pure
/// combinator overhead.
pub fn nested_timeout_compute(depth: u32, work: u64) -> Io<i64> {
    fn wrap(depth: u32, inner: Io<i64>) -> Io<i64> {
        if depth == 0 {
            inner
        } else {
            wrap(
                depth - 1,
                timeout(1 << 40, inner).map(|r| r.expect("budget generous")),
            )
        }
    }
    wrap(depth, Io::compute_returning(work, 7_i64))
}

/// B6: fork `n` trivial children and wait for all (via a counter MVar).
pub fn fork_join(n: u64) -> Io<i64> {
    Io::new_mvar(0_i64).and_then(move |count| {
        conch_runtime::io::replicate(n, move || Io::fork(modify_mvar(count, |c| Io::pure(c + 1))))
            .then(wait_until(count, n as i64))
            .then(count.take())
    })
}

/// B9: the schedule-exploration workload — three threads, one `MVar`,
/// one `throwTo`: worker 1 increments, worker 2 adds ten, the main
/// thread kills worker 1 somewhere in between and reads the survivor's
/// arithmetic.
pub fn explore_workload() -> Io<i64> {
    Io::new_mvar(0_i64).and_then(|m| {
        Io::fork(
            m.take()
                .and_then(move |n| m.put(n + 1))
                .catch(|_| Io::unit()),
        )
        .and_then(move |w1| {
            Io::fork(
                m.take()
                    .and_then(move |n| m.put(n + 10))
                    .catch(|_| Io::unit()),
            )
            .then(Io::throw_to(w1, Exception::kill_thread()))
            .then(Io::sleep(5))
            .then(m.take())
        })
    })
}

/// B9: one full exploration of [`explore_workload`] at the given
/// preemption bound, returning the coverage report.
pub fn explore_once(preemption_bound: Option<usize>) -> Report {
    let cfg = ExploreConfig {
        max_schedules: 100_000,
        preemption_bound,
        ..ExploreConfig::default()
    };
    let result = Explorer::with_config(cfg)
        .check(|| TestCase::new(explore_workload(), |_: &RunOutcome<i64>| Ok(())));
    result.report().clone()
}

/// B9 explored with the work-stealing parallel engine at the given
/// worker count. Coverage counters are bit-identical to
/// [`explore_once`] for any `workers` (the determinism contract of
/// [`Explorer::check_parallel`]); only wall-clock time changes. Uses
/// the unclamped `check_parallel_exact` so a `workers: N` bench row
/// really ran N OS threads even on a machine with fewer cores.
pub fn explore_once_parallel(preemption_bound: Option<usize>, workers: usize) -> Report {
    let cfg = ExploreConfig {
        max_schedules: 100_000,
        preemption_bound,
        ..ExploreConfig::default()
    };
    let result = Explorer::with_config(cfg).check_parallel_exact(workers, || {
        TestCase::new(explore_workload(), |_: &RunOutcome<i64>| Ok(()))
    });
    result.report().clone()
}

/// X1: the `workers + 1`-thread fan-in with a console log — `workers`
/// one-shot producers each putting into a private `MVar`, while the
/// main thread writes `logs` progress characters to the console before
/// collecting the results. Producer terminations interleave freely
/// with the log writes and with each other; under the conservative
/// footprint relation every such interleaving is a distinct schedule,
/// while the vector-clock race analysis proves the producers
/// independent of the console — the workload where DPOR's sharper
/// dependence relation pays off most.
pub fn log_fanin_workload(workers: u64, logs: u64) -> Io<i64> {
    fn build(i: u64, n: u64, logs: u64, acc: Io<i64>) -> Io<i64> {
        if i == n {
            let mut log = Io::unit();
            for _ in 0..logs {
                log = log.then(Io::put_char('.'));
            }
            return log.then(acc);
        }
        Io::new_empty_mvar::<i64>().and_then(move |resp| {
            Io::fork(resp.put(i as i64 + 1)).then(build(
                i + 1,
                n,
                logs,
                acc.and_then(move |sum| resp.take().map(move |v| sum + v)),
            ))
        })
    }
    build(0, workers, logs, Io::pure(0))
}

/// B9/X1: an `n + 1`-thread MVar pipeline with `throwTo` cancellation —
/// the ≥5-thread exploration workload the DPOR benchmarks measure
/// reduction on. Stage `i` takes from its input MVar, adds one, and
/// puts to its output; the main thread feeds the head, kills the first
/// stage mid-flight (the §5.3 cancellation pattern), and takes from the
/// tail. A killed stage forwards `-1` from its handler so the pipeline
/// always drains: every schedule terminates, but *where* the kill lands
/// decides which value comes out the far end.
pub fn pipeline_workload(stages: u64) -> Io<i64> {
    // One stage: take the value, do private scratch work on the
    // stage's own MVar (independent of every other thread — free for
    // DPOR, a combinatorial liability for the plain DFS), hand off.
    // One stage: take the value, do private scratch work on the
    // stage's own pre-allocated MVar (independent of every other
    // thread — free for DPOR, a combinatorial liability for the plain
    // DFS), hand off. The scratch MVar is allocated by the main thread
    // before the fork so allocation order is program-ordered, not a
    // race of its own.
    fn stage(input: MVar<i64>, scratch: MVar<i64>, out: MVar<i64>) -> Io<()> {
        input
            .take()
            .and_then(move |v| {
                scratch
                    .put(v + 1)
                    .then(scratch.take())
                    .and_then(move |v| out.put(v))
            })
            .catch(move |_| out.put(-1).catch(|_| Io::unit()))
    }
    fn extend(input: MVar<i64>, left: u64) -> Io<MVar<i64>> {
        if left == 0 {
            return Io::pure(input);
        }
        Io::new_empty_mvar::<i64>().and_then(move |out| {
            Io::new_empty_mvar::<i64>().and_then(move |scratch| {
                Io::fork(stage(input, scratch, out)).then(extend(out, left - 1))
            })
        })
    }
    Io::new_empty_mvar::<i64>().and_then(move |head| {
        Io::new_empty_mvar::<i64>().and_then(move |m1| {
            Io::new_empty_mvar::<i64>().and_then(move |s1| {
                Io::fork(stage(head, s1, m1)).and_then(move |w1| {
                    extend(m1, stages - 1).and_then(move |tail| {
                        head.put(1)
                            .then(Io::throw_to(w1, Exception::kill_thread()))
                            .then(tail.take())
                    })
                })
            })
        })
    })
}

/// B9/X1: an httpd-style accept loop — a server thread takes requests
/// from a shared queue MVar forever, `clients` forked clients each
/// submit one request, and the main thread shuts the server down with
/// `throwTo` once every request is served (the §11 server shape without
/// the HTTP plumbing). Returns the served total: client `i` contributes
/// `2^i`, so a full run returns `2^clients - 1` on every schedule.
pub fn accept_loop_workload(clients: u64) -> Io<i64> {
    fn server(queue: MVar<i64>, served: MVar<i64>) -> Io<()> {
        queue
            .take()
            .and_then(move |v| served.take().and_then(move |s| served.put(s + v)))
            .and_then(move |_| server(queue, served))
    }
    Io::new_empty_mvar::<i64>().and_then(move |queue| {
        Io::new_mvar(0_i64).and_then(move |served| {
            Io::fork(server(queue, served).catch(|_| Io::unit())).and_then(move |srv| {
                for_each(clients, move |i| Io::fork(queue.put(1 << i)))
                    .then(wait_until(served, (1 << clients) - 1))
                    .then(Io::throw_to(srv, Exception::kill_thread()))
                    .then(served.take())
            })
        })
    })
}

/// One full exploration of an arbitrary workload under an explicit
/// reduction mode and worker count (`workers = 1` uses the sequential
/// engine; more go through the unclamped `check_parallel_exact`, so
/// bench rows measure exactly the worker count they claim). The common
/// core of the X1 reduction benchmarks.
pub fn explore_reduced<G>(
    reduction: Reduction,
    preemption_bound: Option<usize>,
    workers: usize,
    workload: G,
) -> Report
where
    G: Fn() -> Io<i64> + Sync,
{
    let cfg = ExploreConfig {
        max_schedules: 2_000_000,
        preemption_bound,
        strategy: Strategy::Exhaustive(reduction),
        ..ExploreConfig::default()
    };
    let explorer = Explorer::with_config(cfg);
    let result = if workers == 1 {
        explorer.check(|| TestCase::new(workload(), |_: &RunOutcome<i64>| Ok(())))
    } else {
        explorer.check_parallel_exact(workers, || {
            TestCase::new(workload(), |_: &RunOutcome<i64>| Ok(()))
        })
    };
    result.report().clone()
}

/// X2: one full exploration of a canonical fault × schedule space from
/// [`conch_faults::spaces`], checking the recovery invariants
/// ([`conch_faults::spaces::holds_invariants`]) on every schedule.
/// DPOR with preemption bound 2 — fault arms and delivery points still
/// branch fully (only preemptive switches are rationed), so fault
/// coverage stays exhaustive while the space converges in
/// milliseconds. Panics on a violation: the bench regenerates verified
/// numbers and must not silently record a failing space.
pub fn explore_fault_space(space: fn() -> Io<(i64, i64, StatsSnapshot)>, workers: usize) -> Report {
    fn check(out: &RunOutcome<(i64, i64, StatsSnapshot)>) -> Result<(), String> {
        match &out.result {
            Ok(v) => conch_faults::spaces::holds_invariants(v),
            Err(e) => Err(format!("run failed: {e:?}")),
        }
    }
    let cfg = ExploreConfig {
        max_schedules: 100_000,
        max_depth: 512,
        step_budget: 100_000,
        preemption_bound: Some(2),
        strategy: Strategy::Exhaustive(Reduction::Dpor),
        ..ExploreConfig::default()
    };
    let explorer = Explorer::with_config(cfg);
    let result = if workers == 1 {
        explorer.check(|| TestCase::new(space(), check))
    } else {
        explorer.check_parallel_exact(workers, move || TestCase::new(space(), check))
    };
    match result {
        conch_explore::CheckResult::Passed(report) => *report,
        conch_explore::CheckResult::Failed(f) => {
            panic!("fault space violated recovery invariants: {}", f.message)
        }
    }
}

/// X4: the known-seeded bugs the PCT sampling rows measure detection
/// on. Both come from the `tests/dpor_equiv.rs` corpus, so the bench
/// numbers describe the same programs the equivalence suite certifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeededBug {
    /// The classic two-thread console race: forked `putChar 'b'` racing
    /// the parent's `putChar 'a'`; the bug fires when the child wins.
    OutputRace,
    /// §7.1 with the acquire *outside* the protected region: a kill
    /// landing right after it leaks the resource (`a` with no `r`).
    BrokenBracket,
}

/// X4: draw `samples` PCT schedules (depth 3, the given seed) against
/// one seeded bug and report `(report, samples_to_first_bug)` —
/// `None` when the budget never hit the bug. The sampler drains the
/// whole budget either way, so every counter in the report is
/// bit-identical for every `workers` (CI asserts 1 vs 4).
pub fn pct_sample_bug(
    bug: SeededBug,
    workers: usize,
    samples: usize,
    seed: u64,
) -> (Report, Option<u64>) {
    fn sample<T: FromValue + 'static>(
        workers: usize,
        samples: usize,
        seed: u64,
        program: impl Fn() -> Io<T> + Sync,
        fail_if: fn(&RunOutcome<T>) -> Option<String>,
    ) -> (Report, Option<u64>) {
        let cfg = ExploreConfig {
            max_schedules: samples,
            max_depth: 512,
            step_budget: 100_000,
            strategy: Strategy::Pct { depth: 3, seed },
            ..ExploreConfig::default()
        };
        let explorer = Explorer::with_config(cfg);
        let factory = || {
            TestCase::new(program(), move |out: &RunOutcome<T>| match fail_if(out) {
                Some(msg) => Err(msg),
                None => Ok(()),
            })
        };
        let result = if workers == 1 {
            explorer.check(factory)
        } else {
            explorer.check_parallel_exact(workers, factory)
        };
        let report = result.report().clone();
        let first = report.first_failing_sample;
        (report, first)
    }
    match bug {
        SeededBug::OutputRace => sample(
            workers,
            samples,
            seed,
            || {
                Io::fork(Io::put_char('b'))
                    .then(Io::put_char('a'))
                    .then(Io::sleep(1))
            },
            |out| (out.output == "ba").then(|| "child won the race".to_owned()),
        ),
        SeededBug::BrokenBracket => sample(
            workers,
            samples,
            seed,
            || {
                let body = Io::put_char('a').map(|_| 0_i64).and_then(|_| {
                    Io::block(
                        Io::unblock(Io::pure(1_i64))
                            .catch(|e| Io::put_char('r').then(Io::throw(e)))
                            .and_then(|v| Io::put_char('r').map(move |_| v)),
                    )
                });
                Io::fork(body.map(|_| ()).catch(|_| Io::unit()))
                    .and_then(|w| Io::throw_to(w, Exception::kill_thread()))
                    .then(Io::sleep(1))
                    .map(|_| 0_i64)
            },
            |out| {
                let a = out.output.matches('a').count();
                let r = out.output.matches('r').count();
                (a != r).then(|| format!("leak: acquired {a}, released {r}"))
            },
        ),
    }
}

/// X3: an actor-ring token pass — `actors` relay actors chained
/// mailbox-to-mailbox, the main thread closing the ring: each lap it
/// injects the token at the head and collects it at the tail, and each
/// relay increments it on the way through. Every relay does exactly
/// `laps` hand-offs, so every schedule terminates, and on all of them
/// the result is `actors * laps` — mailbox backpressure (capacity-1
/// queues) may reorder the polling but never the tokens.
pub fn actor_ring_workload(actors: u64, laps: u64) -> Io<i64> {
    fn relay(mb: Mailbox<i64>, next: Mailbox<i64>, left: u64) -> Io<()> {
        if left == 0 {
            return Io::unit();
        }
        mb.recv()
            .and_then(move |v: i64| next.send(v + 1).then(relay(mb, next, left - 1)))
    }
    fn chain(left: u64, laps: u64, input: Mailbox<i64>) -> Io<Mailbox<i64>> {
        if left == 0 {
            return Io::pure(input);
        }
        Mailbox::<i64>::new(1).and_then(move |out| {
            spawn_actor_on(input, move |mb: Mailbox<i64>| relay(mb, out, laps))
                .and_then(move |_| chain(left - 1, laps, out))
        })
    }
    fn drive(head: Mailbox<i64>, tail: Mailbox<i64>, left: u64, token: i64) -> Io<i64> {
        if left == 0 {
            return Io::pure(token);
        }
        head.send(token)
            .then(tail.recv())
            .and_then(move |v: i64| drive(head, tail, left - 1, v))
    }
    Mailbox::<i64>::new(1).and_then(move |head| {
        chain(actors, laps, head).and_then(move |tail| drive(head, tail, laps, 0))
    })
}

/// X3: one full exploration of the actor ring at the canonical bench
/// size (3 actors, 2 laps), under the same bounds as the fault spaces
/// (DPOR, preemption bound 2 — hand-offs and exception-delivery points
/// still branch fully). Panics if any schedule garbles the token: the
/// bench regenerates verified numbers and must not silently record a
/// failing workload.
pub fn explore_actor_ring(workers: usize) -> Report {
    const ACTORS: u64 = 3;
    const LAPS: u64 = 2;
    fn check(out: &RunOutcome<i64>) -> Result<(), String> {
        match &out.result {
            Ok(v) if *v == (ACTORS * LAPS) as i64 => Ok(()),
            other => Err(format!("ring token garbled: {other:?}")),
        }
    }
    let cfg = ExploreConfig {
        max_schedules: 100_000,
        max_depth: 512,
        step_budget: 100_000,
        preemption_bound: Some(2),
        strategy: Strategy::Exhaustive(Reduction::Dpor),
        ..ExploreConfig::default()
    };
    let explorer = Explorer::with_config(cfg);
    let result = if workers == 1 {
        explorer.check(|| TestCase::new(actor_ring_workload(ACTORS, LAPS), check))
    } else {
        explorer.check_parallel_exact(workers, || {
            TestCase::new(actor_ring_workload(ACTORS, LAPS), check)
        })
    };
    match result {
        conch_explore::CheckResult::Passed(report) => *report,
        conch_explore::CheckResult::Failed(f) => {
            panic!("actor ring violated its invariant: {}", f.message)
        }
    }
}

/// S1 under the supervised pool: the same well-behaved load served by
/// the `conch-actors` worker pool behind the accept loop instead of a
/// fork per connection. The queue is sized to the load so nothing is
/// shed; every request must come back `200`. Returns the quiesced
/// snapshot so callers can record — and CI can assert — that the
/// conservation law (`accepted == outcomes`) survives the pool.
pub fn serve_n_good_pooled(n: u64) -> Io<StatsSnapshot> {
    fn routes() -> Handler {
        handler(|_| Io::pure(Response::ok("ok")))
    }
    let config = PoolConfig {
        queue_capacity: n as i64,
        ..PoolConfig::default()
    };
    Listener::bind().and_then(move |l| {
        start_pooled(l, routes(), config).and_then(move |server| {
            Io::new_empty_mvar::<i64>().and_then(move |report| {
                for_each(n, move |i| {
                    Io::fork(good_client(l, format!("/{i}"), report))
                })
                .then(sequence((0..n).map(|_| report.take()).collect()))
                .and_then(move |codes| {
                    assert!(codes.iter().all(|c| *c == 200));
                    server
                        .shutdown_sync()
                        .then(server.drain())
                        .then(server.stats.snapshot())
                        .and_then(move |snap| server.stop_sync().map(move |_| snap))
                })
            })
        })
    })
}

/// S1: the §11 server answering `n` well-behaved requests, one forked
/// client (and one forked per-connection server thread) per request.
pub fn serve_n_good(n: u64) -> Io<()> {
    fn routes() -> Handler {
        handler(|_| Io::pure(Response::ok("ok")))
    }
    Listener::bind().and_then(move |l| {
        start(l, routes(), ServerConfig::default()).and_then(move |server| {
            Io::new_empty_mvar::<i64>().and_then(move |report| {
                for_each(n, move |i| {
                    Io::fork(good_client(l, format!("/{i}"), report))
                })
                .then(sequence((0..n).map(|_| report.take()).collect()))
                .and_then(move |codes| {
                    assert!(codes.iter().all(|c| *c == 200));
                    server.shutdown().then(server.drain())
                })
            })
        })
    })
}

/// S1 with a realistic arrival process: client `i` connects at virtual
/// time `i * gap_us` instead of everyone piling in at t = 0.
///
/// With simultaneous arrivals the run queue never goes empty, so the
/// virtual clock — which only advances when every thread is waiting on
/// time — stays at 0 for the whole run and "requests per virtual
/// second" is undefined. Paced arrivals give the clock real work to do:
/// the run's virtual duration is deterministic under round-robin
/// scheduling, so the derived throughput is a pinnable number.
pub fn serve_n_good_paced(n: u64, gap_us: u64) -> Io<()> {
    fn routes() -> Handler {
        handler(|_| Io::pure(Response::ok("ok")))
    }
    Listener::bind().and_then(move |l| {
        start(l, routes(), ServerConfig::default()).and_then(move |server| {
            Io::new_empty_mvar::<i64>().and_then(move |report| {
                for_each(n, move |i| {
                    Io::fork(Io::sleep(i * gap_us).then(good_client(l, format!("/{i}"), report)))
                })
                .then(sequence((0..n).map(|_| report.take()).collect()))
                .and_then(move |codes| {
                    assert!(codes.iter().all(|c| *c == 200));
                    server.shutdown().then(server.drain())
                })
            })
        })
    })
}

/// S2: the production-scale sharded plane — `clients` keep-alive
/// connections over `shards` accept shards, each connection carrying
/// `requests_per_conn` pipelined requests in one FIN-terminated frame
/// (`conch_httpd::shard::sharded_load`). Arrivals are paced per shard,
/// so the virtual makespan is `(clients / shards) × gap`: the derived
/// "requests per virtual second" is deterministic and scales linearly
/// with the shard count. Returns the ok-count and the
/// quiescent-aggregate snapshot; panics unless every request was
/// served — the bench must not record a lossy run.
pub fn serve_sharded(clients: usize, shards: usize, requests_per_conn: usize) -> Io<StatsSnapshot> {
    let cfg = LoadConfig {
        clients,
        shards,
        requests_per_conn,
        arrival_gap: 100,
        queue_capacity: 1_024,
        ..LoadConfig::default()
    };
    let want = (clients * requests_per_conn) as i64;
    sharded_load(handler(|_| Io::pure(Response::ok("ok"))), cfg).map(move |(oks, snap)| {
        assert_eq!(oks, want, "every pipelined request must come back 200");
        assert_eq!(snap.served, want, "aggregate must record every serve");
        snap
    })
}

/// S3: [`serve_sharded`] with a skewed arrival pattern — `hot_percent`%
/// of the clients land on shard 0 (`conch_httpd::shard::sharded_load_skewed`).
/// Returns the quiescent aggregate plus the per-shard snapshots whose
/// `accepted` counters expose the imbalance; panics unless every request
/// was served and the aggregate conserves, so the skew costs no
/// requests — only fairness.
pub fn serve_sharded_skewed(
    clients: usize,
    shards: usize,
    requests_per_conn: usize,
    hot_percent: usize,
) -> Io<(StatsSnapshot, Vec<StatsSnapshot>)> {
    let cfg = LoadConfig {
        clients,
        shards,
        requests_per_conn,
        arrival_gap: 100,
        queue_capacity: 1_024,
        ..LoadConfig::default()
    };
    let want = (clients * requests_per_conn) as i64;
    sharded_load_skewed(handler(|_| Io::pure(Response::ok("ok"))), cfg, hot_percent).map(
        move |(oks, agg, per_shard)| {
            assert_eq!(oks, want, "skewed load must still serve every request");
            assert_eq!(agg.served, want, "skewed aggregate must record every serve");
            assert!(agg.conserved(), "skewed aggregate must conserve");
            (agg, per_shard)
        },
    )
}

/// W1: the wall-clock parallel plane — `shards` independent schedulers
/// spread over `os_threads` OS threads
/// (`conch_httpd::parallel::wall_parallel_load`). Panics unless every
/// request was served, the channel-plane aggregate conserves, and the
/// merged snapshot that travelled through the cross-shard channels
/// equals the host-side re-merge — so the bench numbers are only ever
/// recorded for a run the determinism machinery fully validated.
pub fn serve_wall_parallel(
    clients: usize,
    shards: usize,
    requests_per_conn: usize,
    os_threads: usize,
) -> conch_httpd::parallel::WallReport {
    let cfg = WallConfig {
        shards,
        clients,
        requests_per_conn,
        os_threads,
        ..WallConfig::default()
    };
    let report = wall_parallel_load(|| handler(|_| Io::pure(Response::ok("ok"))), cfg);
    let want = (clients * requests_per_conn) as i64;
    assert_eq!(report.oks, want, "wall plane must serve every request");
    assert_eq!(report.merged.served, want);
    assert!(report.merged.conserved(), "wall aggregate must conserve");
    assert_eq!(
        report.merged,
        report.host_merged(),
        "channel-plane aggregate must equal the host-side re-merge"
    );
    report
}

/// T1: the timer-wheel churn microbench, production-shaped: `standing`
/// far-future entries model idle keep-alive connection timers (they
/// never fire), and `cycles` ticks each insert `batch` near-term
/// entries and then expire them together — the batched-wakeup shape the
/// scheduler produces when a whole tick of sleepers becomes runnable at
/// one `advance_clock`. The old `BinaryHeap` pays O(log n) against the
/// standing population on *every* insert and every expiry sift; the
/// hierarchical wheel files each entry in O(1) and drains the tick with
/// one bucket grab, untouched by the standing mass. Returns a checksum
/// (fired-entry payload sum) so the work cannot be optimised away —
/// both implementations must agree on it.
pub fn timer_wheel_churn(standing: u64, cycles: u64, batch: u64) -> u64 {
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    let mut seq = 0_u64;
    for i in 0..standing {
        wheel.insert(
            0,
            TimerEntry {
                wake_at: 1 << 40,
                seq,
                payload: i,
            },
        );
        seq += 1;
    }
    let mut out = Vec::new();
    let mut sum = 0_u64;
    for i in 0..cycles {
        let now = i;
        for b in 0..batch {
            wheel.insert(
                now,
                TimerEntry {
                    wake_at: now + 1,
                    seq,
                    payload: i.wrapping_mul(batch).wrapping_add(b),
                },
            );
            seq += 1;
        }
        // The whole batch is due at `now + 1`; the standing mass stays
        // filed in the top levels and is never touched.
        let wake = wheel.pop_earliest_into(&mut out).expect("a due tick");
        debug_assert_eq!(wake, now + 1);
        for e in out.drain(..) {
            sum = sum.wrapping_add(e.payload);
        }
    }
    sum
}

/// T1 baseline: the identical workload through the scheduler's old
/// sleeper structure — a `BinaryHeap` of `(wake_at, seq)`-ordered
/// entries popped one sift at a time. Same checksum as
/// [`timer_wheel_churn`].
pub fn timer_heap_churn(standing: u64, cycles: u64, batch: u64) -> u64 {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
    let mut seq = 0_u64;
    for i in 0..standing {
        heap.push(Reverse((1 << 40, seq, i)));
        seq += 1;
    }
    let mut sum = 0_u64;
    for i in 0..cycles {
        let now = i;
        for b in 0..batch {
            heap.push(Reverse((
                now + 1,
                seq,
                i.wrapping_mul(batch).wrapping_add(b),
            )));
            seq += 1;
        }
        while let Some(Reverse((wake, _, payload))) = heap.peek().copied() {
            if wake > now + 1 {
                break;
            }
            heap.pop();
            sum = sum.wrapping_add(payload);
        }
    }
    sum
}

/// Polls (sleeping) until the counter reaches `target`.
pub fn wait_until(count: conch_runtime::MVar<i64>, target: i64) -> Io<()> {
    conch_combinators::with_mvar(count, Io::pure).and_then(move |c| {
        if c >= target {
            Io::unit()
        } else {
            Io::sleep(10).then(wait_until(count, target))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_run_clean() {
        let cfg = RuntimeConfig::new;
        assert_eq!(run(cfg(), mvar_uncontended(10)).0, 10);
        assert_eq!(run(cfg(), mvar_safe_updates(10)).0, 10);
        assert_eq!(run(cfg(), mvar_naive_updates(10)).0, 10);
        run(cfg(), mvar_pingpong(5));
        run(cfg(), mask_recursive_loop(50));
        run(cfg(), kill_round_async());
        run(cfg(), kill_round_sync());
        run(cfg(), spray_async(5));
        assert_eq!(run(cfg(), nested_timeout_compute(3, 100)).0, 7);
        assert_eq!(run(cfg(), fork_join(10)).0, 10);
        run(cfg(), polling_overhead(500, 50));
        let polling = RuntimeConfig::new().delivery_mode(DeliveryMode::Polling);
        run(polling, polled_victim_round(50));
    }

    #[test]
    fn actor_and_pool_workloads_run_clean() {
        let cfg = RuntimeConfig::new;
        assert_eq!(run(cfg(), actor_ring_workload(3, 2)).0, 6);
        let snap = run(cfg(), serve_n_good_pooled(10)).0;
        assert_eq!(snap.served, 10);
        assert!(snap.conserved(), "{snap:?}");
    }

    #[test]
    fn sharded_workload_runs_clean_and_conserves() {
        let snap = run(RuntimeConfig::new(), serve_sharded(24, 4, 5)).0;
        assert_eq!(snap.accepted, 120);
        assert!(snap.conserved(), "{snap:?}");
    }

    #[test]
    fn timer_churn_checksums_agree() {
        assert_eq!(
            timer_wheel_churn(1_000, 2_000, 8),
            timer_heap_churn(1_000, 2_000, 8)
        );
    }

    /// Prints wheel-vs-heap ratios across batch sizes; run with
    /// `cargo test --release -p conch-bench timer_churn_timing -- --ignored --nocapture`.
    #[test]
    #[ignore = "timing probe, release-only"]
    fn timer_churn_timing() {
        for batch in [1_u64, 8, 32, 64] {
            let cycles = 2_000_000 / batch;
            let t0 = std::time::Instant::now();
            let w = timer_wheel_churn(100_000, cycles, batch);
            let tw = t0.elapsed().as_secs_f64();
            let t1 = std::time::Instant::now();
            let h = timer_heap_churn(100_000, cycles, batch);
            let th = t1.elapsed().as_secs_f64();
            assert_eq!(w, h);
            println!(
                "batch {batch:3}: wheel {tw:.3}s heap {th:.3}s ratio {:.2}",
                th / tw
            );
        }
    }

    #[test]
    fn mask_loop_collapse_shape() {
        let (_, rt) = run(RuntimeConfig::new(), mask_recursive_loop(200));
        let with = rt.stats().max_mask_frames;
        let (_, rt2) = run(
            RuntimeConfig::new().collapse_mask_frames(false),
            mask_recursive_loop(200),
        );
        let without = rt2.stats().max_mask_frames;
        assert!(with <= 2, "collapse keeps mask frames O(1), got {with}");
        assert!(
            without >= 200,
            "no collapse grows mask frames O(n), got {without}"
        );
    }

    #[test]
    fn polling_latency_grows_with_interval() {
        let lat = |interval: u64| {
            let cfg = RuntimeConfig::new().delivery_mode(DeliveryMode::Polling);
            let (_, rt) = run(cfg, polled_victim_round(interval));
            rt.stats().mean_delivery_latency().expect("one delivery")
        };
        let fast = lat(10);
        let slow = lat(1_000);
        assert!(
            slow > fast * 5.0,
            "polling latency must scale with poll interval: {fast} vs {slow}"
        );
        // Fully-async latency is independent of any interval and small.
        let (_, rt) = run(RuntimeConfig::new(), kill_round_async());
        let async_lat = rt.stats().mean_delivery_latency().expect("one delivery");
        assert!(
            async_lat < fast.max(20.0) * 3.0,
            "async latency {async_lat}"
        );
    }
}
