//! The scripted [`Decider`] the explorer installs into a [`Runtime`]
//! (see [`conch_runtime::scheduler::Runtime::set_decider`]).
//!
//! One `DriverState` drives one run. It replays a *script* — the choice
//! at every branch point of some prefix — and past the end of the
//! script makes default choices, recording every branch point it passes
//! so the DFS in [`crate::explorer`] can backtrack.
//!
//! Three reductions keep the branch-point count down:
//!
//! * **Invisible-move fast-forwarding** — a runnable thread whose next
//!   step is local to itself ([`StepFootprint::is_local`]) and that has
//!   no pending asynchronous exceptions is always run first, without a
//!   branch point: its step commutes with every other thread's, so
//!   scheduling it eagerly explores one representative of each
//!   equivalence class of interleavings.
//! * **Sleep sets** — when the DFS has already explored running thread
//!   `a` at a branch point and comes back to try sibling `b`, `a` is
//!   put to sleep: in the `b` subtree `a` is not chosen again until
//!   some step *dependent* on `a`'s (per [`StepFootprint::independent`])
//!   executes, because until then `b…a` reaches the same state as the
//!   already-explored `a…b`.
//! * **Preemption bounding** — optionally, once a run has used its
//!   budget of preemptions (choosing against a still-runnable previous
//!   thread), the previous thread is forced, CHESS-style.
//!
//! Crucially, *which* step boundaries count as branch points is a
//! deterministic function of the executed path alone — never of the
//! sleep sets — so a bare list of choices ([`crate::Schedule`]) is
//! enough to replay a run exactly, with no DFS bookkeeping attached.

use std::cell::RefCell;
use std::rc::Rc;

use conch_runtime::decide::{Decider, StepFootprint, ThreadView};
use conch_runtime::ids::ThreadId;

use crate::clocks::{Birth, ExecEvent};
use crate::sample::SamplePolicy;
use crate::schedule::Choice;

/// A sleep-set entry: a thread and the footprint of the step it was put
/// to sleep with.
pub(crate) type SleepEntry = (u64, StepFootprint);

/// Inline capacity of [`Alts`]: candidate lists of up to this many
/// threads (the overwhelmingly common case) need no heap allocation.
const ALTS_INLINE: usize = 4;

/// The candidate list of a branch point. A run records one of these per
/// scheduling point, so a heap `Vec` here is the hottest allocation in
/// the whole exploration loop; small lists are stored inline instead.
#[derive(Debug, Clone)]
pub(crate) enum Alts {
    Inline {
        len: u8,
        buf: [SleepEntry; ALTS_INLINE],
    },
    Heap(Vec<SleepEntry>),
}

impl Alts {
    pub fn new() -> Self {
        Alts::Inline {
            len: 0,
            buf: [(0, StepFootprint::Local); ALTS_INLINE],
        }
    }

    pub fn push(&mut self, entry: SleepEntry) {
        match self {
            Alts::Inline { len, buf } => {
                if (*len as usize) < ALTS_INLINE {
                    buf[*len as usize] = entry;
                    *len += 1;
                } else {
                    let mut v: Vec<SleepEntry> = buf.to_vec();
                    v.push(entry);
                    *self = Alts::Heap(v);
                }
            }
            Alts::Heap(v) => v.push(entry),
        }
    }
}

impl std::ops::Deref for Alts {
    type Target = [SleepEntry];
    fn deref(&self) -> &[SleepEntry] {
        match self {
            Alts::Inline { len, buf } => &buf[..*len as usize],
            Alts::Heap(v) => v,
        }
    }
}

/// A branch point recorded during a run.
#[derive(Debug, Clone)]
pub(crate) struct Point {
    /// For scheduling points: the full candidate list (thread id and
    /// next-step footprint, in run-queue order). Empty for delivery
    /// points.
    pub alts: Alts,
    /// Thread ids among `alts` that were asleep when this point was
    /// first created (candidates the DFS will skip).
    pub sleeping: Vec<u64>,
    /// The choice taken this run.
    pub chosen: Choice,
    /// For oracle points ([`Io::choose`](conch_runtime::io::Io::choose)):
    /// the number of arms. Zero for scheduling and delivery points.
    pub arms: u8,
}

impl Point {
    /// Is this a delivery (rather than scheduling) point?
    pub fn is_delivery(&self) -> bool {
        matches!(self.chosen, Choice::Deliver(_))
    }

    /// Is this an oracle-arm point?
    pub fn is_arm(&self) -> bool {
        matches!(self.chosen, Choice::Arm(_))
    }
}

/// Mutable driver state for one run, shared between the [`Decider`]
/// installed in the runtime and the explorer that owns the run.
///
/// The explorer keeps one `DriverState` alive for a whole exploration
/// and [`reset`](DriverState::reset)s it between runs, so the `script`,
/// `extra_sleep`, `record` and `sleep` buffers keep their capacity
/// instead of being reallocated tens of thousands of times.
pub(crate) struct DriverState {
    /// Choices to replay, one per branch point, in order.
    pub script: Vec<Choice>,
    /// Sibling alternatives already explored at scripted points, to be
    /// added to the sleep set there: `(script position, entry)` pairs in
    /// ascending position order (a flat list, not one `Vec` per point,
    /// so refilling it between runs allocates nothing once warm).
    pub extra_sleep: Vec<(usize, SleepEntry)>,
    /// Cursor into `extra_sleep`.
    extra_pos: usize,
    /// Next script position.
    pos: usize,
    /// Every branch point passed this run (scripted and frontier).
    pub record: Vec<Point>,
    /// The current sleep set.
    sleep: Vec<SleepEntry>,
    /// Preemptions used so far this run.
    preemptions: usize,
    preemption_bound: Option<usize>,
    /// Branch-point budget; beyond it choices are forced to defaults.
    max_points: usize,
    /// Whether the branch-point budget was hit (the run is truncated:
    /// schedules below this point were not enumerated).
    pub depth_hit: bool,
    /// When set, every executed non-invisible step is appended to
    /// `exec_log` (with thread births in `births`) for the DPOR race
    /// analysis. Off for sleep-set exploration and replay, where the
    /// log would be pure overhead.
    pub trace_exec: bool,
    /// The executed-step log (see [`crate::clocks`]). Thread-local
    /// steps are omitted — they can never participate in a race.
    pub exec_log: Vec<ExecEvent>,
    /// Creation edges: each thread's first appearance, with the fork
    /// event that created it when identifiable.
    pub births: Vec<Birth>,
    /// Every thread id ever observed in a runnable view this run.
    known_tids: Vec<u64>,
    /// Whether the scheduling decision of the current step boundary
    /// pushed an event onto `exec_log`. When the boundary then turns
    /// into a delivery ([`DriverState::deliver_point`] chooses to
    /// deliver), that event is a phantom — the thread's ordinary step
    /// never executed — and must be popped again.
    sched_logged: bool,
    /// Sampling policy consulted at *unscripted* branch points (see
    /// [`crate::sample`]). `None` for exhaustive exploration and for
    /// certificate replay, where unscripted choices fall back to the
    /// deterministic defaults as ever. The policy only ever substitutes
    /// for a default choice — the forced paths (single runnable,
    /// invisible-move fast-forward, preemption forcing, depth budget)
    /// stay ahead of it, so which step boundaries become branch points
    /// is the same function of the executed path under sampling as
    /// under enumeration. That is what makes a sampled certificate
    /// byte-compatible with an exhaustive one.
    pub policy: Option<SamplePolicy>,
}

impl DriverState {
    pub fn new(
        script: Vec<Choice>,
        extra_sleep: Vec<(usize, SleepEntry)>,
        preemption_bound: Option<usize>,
        max_points: usize,
    ) -> Self {
        DriverState {
            script,
            extra_sleep,
            extra_pos: 0,
            pos: 0,
            record: Vec::new(),
            sleep: Vec::new(),
            preemptions: 0,
            preemption_bound,
            max_points,
            depth_hit: false,
            trace_exec: false,
            exec_log: Vec::new(),
            births: Vec::new(),
            known_tids: Vec::new(),
            sched_logged: false,
            policy: None,
        }
    }

    /// Clears all per-run state (keeping buffer capacity) so the same
    /// `DriverState` can drive the next run. The caller refills `script`
    /// and `extra_sleep` afterwards.
    pub fn reset(&mut self) {
        self.script.clear();
        self.extra_sleep.clear();
        self.extra_pos = 0;
        self.pos = 0;
        self.record.clear();
        self.sleep.clear();
        self.preemptions = 0;
        self.depth_hit = false;
        self.exec_log.clear();
        self.births.clear();
        self.known_tids.clear();
        self.sched_logged = false;
        self.policy = None;
    }

    /// Note the threads visible at a step boundary, recording births
    /// (first appearances) with a creation edge to the immediately
    /// preceding event when it was a fork. Only called when
    /// `trace_exec` is on.
    fn note_views(&mut self, runnable: &[ThreadView]) {
        for v in runnable {
            let tid = v.tid.index();
            if !self.known_tids.contains(&tid) {
                self.known_tids.push(tid);
                // Exactly one step executes between consecutive
                // decisions, so if the last logged event was a fork it
                // is the step that created this thread. (A local
                // step could also have executed and gone unlogged —
                // but a local step cannot fork.)
                let parent_event = match self.exec_log.last() {
                    Some(e) if e.fp == StepFootprint::Fork => {
                        Some((self.exec_log.len() - 1) as u32)
                    }
                    _ => None,
                };
                self.births.push(Birth { tid, parent_event });
            }
        }
    }

    /// Log one executed step for the race analysis. Returns whether an
    /// event was actually pushed (local steps are skipped — they cannot
    /// participate in a race; the explicit delivery branch points cover
    /// the only nondeterminism a pending queue adds).
    ///
    /// A `throwTo` whose target is not currently runnable is marked
    /// [`ExecEvent::blocked_target`]: the target may be *blocked*, and
    /// the eager (Interrupt) rule then cancels its wait — an effect on
    /// whatever resource (MVar, console, clock) the target was waiting
    /// on, which the analyzer recovers from the target's own event log.
    fn log_exec(&mut self, view: &ThreadView, point: Option<u32>, runnable: &[ThreadView]) -> bool {
        if !self.trace_exec {
            return false;
        }
        let fp = view.footprint;
        if fp.is_local() || fp == StepFootprint::Oracle {
            // Local steps cannot race; an oracle step is confined to
            // its thread too — its nondeterminism is carried entirely
            // by the explicit `Choice::Arm` branch point, which the
            // engines always branch fully.
            return false;
        }
        let blocked_target = match fp {
            StepFootprint::Throw(target) => !runnable.iter().any(|v| v.tid == target),
            _ => false,
        };
        self.exec_log.push(ExecEvent {
            tid: view.tid.index(),
            fp,
            point,
            blocked_target,
        });
        true
    }

    /// A step by `tid` with footprint `fp` is about to execute: wake
    /// every sleep entry that is dependent on it (and the thread itself,
    /// should it somehow be asleep).
    fn note_exec(&mut self, tid: u64, fp: StepFootprint) {
        if self.sleep.is_empty() {
            return;
        }
        self.sleep
            .retain(|&(q, qfp)| q != tid && fp.independent(qfp));
    }

    fn is_asleep(&self, tid: u64) -> bool {
        self.sleep.iter().any(|&(q, _)| q == tid)
    }

    /// The scheduling decision for a branch point with candidates
    /// `runnable`. Returns the index to run.
    fn sched_point(&mut self, runnable: &[ThreadView], previous: Option<ThreadId>) -> usize {
        let mut alts = Alts::new();
        for v in runnable {
            alts.push((v.tid.index(), v.footprint));
        }

        // Preemption bounding: out of budget and the previous thread can
        // continue => force it (deterministically, so this is not a
        // branch point and consumes no script entry).
        if let (Some(bound), Some(prev)) = (self.preemption_bound, previous) {
            if self.preemptions >= bound {
                if let Some(i) = runnable.iter().position(|v| v.tid == prev) {
                    self.note_exec(alts[i].0, alts[i].1);
                    self.sched_logged = self.log_exec(&runnable[i], None, runnable);
                    return i;
                }
            }
        }

        // Branch-point budget: beyond it, force the default choice.
        if self.record.len() >= self.max_points {
            self.depth_hit = true;
            self.note_exec(alts[0].0, alts[0].1);
            self.sched_logged = self.log_exec(&runnable[0], None, runnable);
            return 0;
        }

        // Scripted or frontier choice.
        let scripted = if self.pos < self.script.len() {
            while let Some(&(p, entry)) = self.extra_sleep.get(self.extra_pos) {
                if p > self.pos {
                    break;
                }
                self.extra_pos += 1;
                // Entries whose position was consumed by a delivery
                // point (possible only when replaying a spliced
                // schedule) are skipped, exactly as the old
                // position-indexed lookup never applied them.
                if p == self.pos && !self.is_asleep(entry.0) {
                    self.sleep.push(entry);
                }
            }
            let c = self.script[self.pos];
            self.pos += 1;
            Some(c)
        } else {
            None
        };

        let sleeping: Vec<u64> = alts
            .iter()
            .map(|&(t, _)| t)
            .filter(|&t| self.is_asleep(t))
            .collect();

        let default_index = || {
            alts.iter()
                .position(|&(t, _)| !sleeping.contains(&t))
                .unwrap_or(0)
        };
        let index = match scripted {
            Some(Choice::Thread(t)) => alts
                .iter()
                .position(|&(a, _)| a == t)
                .unwrap_or_else(default_index),
            // A delivery or arm choice at a scheduling point can only
            // happen when replaying a spliced (shrunk) schedule; fall
            // back. Unscripted points ask the sampling policy first,
            // when one is installed.
            Some(Choice::Deliver(_) | Choice::Arm(_)) | None => match self.policy.as_mut() {
                Some(policy) => policy.pick_thread(&alts, &sleeping),
                None => default_index(),
            },
        };

        if let Some(prev) = previous {
            if runnable[index].tid != prev && runnable.iter().any(|v| v.tid == prev) {
                self.preemptions += 1;
            }
        }
        let (chosen_tid, chosen_fp) = alts[index];
        self.record.push(Point {
            alts,
            sleeping,
            chosen: Choice::Thread(chosen_tid),
            arms: 0,
        });
        let point = (self.record.len() - 1) as u32;
        self.sched_logged = self.log_exec(&runnable[index], Some(point), runnable);
        self.note_exec(chosen_tid, chosen_fp);
        index
    }

    /// When the boundary delivers, the ordinary step logged by
    /// [`sched_point`](DriverState::sched_point) never executed: pop
    /// the phantom. The delivery transition itself is not logged — it
    /// is local to the target (the nondeterminism of *where* a pending
    /// exception lands is entirely carried by the explicit
    /// `Choice::Deliver` branch points, whose both arms the DPOR engine
    /// always explores).
    fn unlog_phantom(&mut self) {
        if self.trace_exec && self.sched_logged {
            self.exec_log.pop();
            self.sched_logged = false;
        }
    }

    fn deliver_point(&mut self, view: ThreadView) -> bool {
        if self.record.len() >= self.max_points {
            self.depth_hit = true;
            self.unlog_phantom();
            return true;
        }
        let scripted = if self.pos < self.script.len() {
            let c = self.script[self.pos];
            self.pos += 1;
            Some(c)
        } else {
            None
        };
        let deliver = match scripted {
            Some(Choice::Deliver(b)) => b,
            // A thread or arm choice here means a spliced schedule;
            // default. Unscripted points ask the sampling policy first.
            Some(Choice::Thread(_) | Choice::Arm(_)) | None => match self.policy.as_mut() {
                Some(policy) => policy.pick_deliver(),
                None => true,
            },
        };
        if deliver {
            // The delivered exception starts unwinding the target: a step
            // local to that thread, but conservatively wake everything
            // that was sleeping on the target's originally-intended step.
            self.note_exec(view.tid.index(), StepFootprint::Effect);
        }
        self.record.push(Point {
            alts: Alts::new(),
            sleeping: Vec::new(),
            chosen: Choice::Deliver(deliver),
            arms: 0,
        });
        if deliver {
            self.unlog_phantom();
        }
        deliver
    }

    /// The arm decision for an [`Io::choose`](conch_runtime::io::Io::choose)
    /// oracle. Recorded as a full branch point (every arm is a sibling
    /// the DFS will visit), even when the thread choice leading here was
    /// forced. Oracle steps are never logged for the race analysis —
    /// their nondeterminism is entirely carried by this explicit choice.
    fn arm_point(&mut self, _view: ThreadView, arms: u8) -> u8 {
        if self.record.len() >= self.max_points {
            self.depth_hit = true;
            return 0;
        }
        let scripted = if self.pos < self.script.len() {
            let c = self.script[self.pos];
            self.pos += 1;
            Some(c)
        } else {
            None
        };
        let arm = match scripted {
            // An out-of-range arm (or a thread/delivery choice) here
            // means a spliced schedule; take the default arm.
            // Unscripted points ask the sampling policy first.
            Some(Choice::Arm(a)) if a < arms => a,
            _ => match self.policy.as_mut() {
                Some(policy) => policy.pick_arm(arms),
                None => 0,
            },
        };
        self.record.push(Point {
            alts: Alts::new(),
            sleeping: Vec::new(),
            chosen: Choice::Arm(arm),
            arms,
        });
        arm
    }
}

/// The [`Decider`] facade over a shared [`DriverState`].
pub(crate) struct ScriptedDecider(pub Rc<RefCell<DriverState>>);

impl Decider for ScriptedDecider {
    fn choose_thread(&mut self, runnable: &[ThreadView], previous: Option<ThreadId>) -> usize {
        let mut st = self.0.borrow_mut();
        if st.trace_exec {
            st.note_views(runnable);
        }
        // Forced: only one thread can run.
        if runnable.len() == 1 {
            let v = runnable[0];
            st.note_exec(v.tid.index(), v.footprint);
            st.sched_logged = st.log_exec(&v, None, runnable);
            return 0;
        }
        // Invisible-move fast-forward: run a local, exception-free step
        // without branching (lowest thread id for determinism). Local
        // steps never participate in races, so the exec log skips them.
        let local = runnable
            .iter()
            .enumerate()
            .filter(|(_, v)| v.pending == 0 && v.footprint.is_local())
            .min_by_key(|(_, v)| v.tid);
        if let Some((i, v)) = local {
            st.note_exec(v.tid.index(), v.footprint);
            // Never logged, and never followed by a delivery check
            // (fast-forwarding requires no pending exceptions).
            st.sched_logged = false;
            return i;
        }
        st.sched_point(runnable, previous)
    }

    fn deliver_now(&mut self, view: ThreadView) -> bool {
        self.0.borrow_mut().deliver_point(view)
    }

    fn choose_arm(&mut self, view: ThreadView, arms: u8) -> u8 {
        self.0.borrow_mut().arm_point(view, arms)
    }
}
