//! # conch-actors
//!
//! Erlang-style typed actors built directly on the paper's
//! asynchronous-exception primitives — the layer "An Exceptional Actor
//! System" (PAPERS.md) shows is the canonical next storey above
//! `throwTo` + `mask` + `bracket`:
//!
//! * [`Mailbox<M>`] — bounded typed FIFO with backpressure, whose
//!   single-cell masked transactions make capacity unleakable and
//!   whose `recv` closes the take→deliver window against asynchronous
//!   kills (see the module docs for the pre-fix `recv_racy` bug the
//!   explorer regression test exhibits).
//! * [`spawn_actor`] / [`ActorRef<M>`] — a thread wrapped in a masked
//!   shell that classifies every termination into an
//!   [`ExitReason`](conch_runtime::exception::ExitReason) and notifies
//!   peers on *every* exit path, the `bracket` discipline applied to
//!   lifecycle bookkeeping.
//! * [`link`] / [`monitor`] — crash propagation via
//!   `throwTo(ExitSignal)` and exactly-once [`Down`] messages;
//!   trap-exits via `mask` + [`Mailbox::recv_trapping`].
//! * [`Supervisor`] — one-for-one / all-for-one / rest-for-one restart
//!   strategies with sliding max-restart-intensity windows, composing
//!   into supervision trees via [`supervisor_child`].
//!
//! Everything here is deterministic under `conch-explore`: the
//! supervision invariants (no orphans after supervisor death, restarts
//! preserve state, monitors fire exactly once) are checked on *every*
//! schedule in `tests/explore_actors.rs` and under fault injection in
//! `conch-faults`.

pub mod actor;
pub mod mailbox;
pub mod supervisor;

pub use actor::{link, monitor, spawn_actor, spawn_actor_on, ActorRef, Down, Signal};
pub use mailbox::{Mailbox, POLL_INTERVAL};
pub use supervisor::{
    child_spec, spawn_supervisor, supervisor_child, ChildSpec, Strategy, Supervisor, SupervisorSpec,
};
