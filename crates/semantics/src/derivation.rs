//! Recording and rendering derivations.
//!
//! A derivation is a finite run of the transition system with each step
//! labelled by its rule, in the notation of the paper's Figures 4 and 5
//! — the kind of trace one writes out by hand when working through the
//! §5.1 example. [`derive()`] produces one under a caller-supplied
//! scheduling choice; [`Derivation::render`] pretty-prints it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::State;
use crate::rules::{Label, RuleConfig, RuleName};
use crate::term::TidName;

/// One step of a recorded derivation.
#[derive(Debug, Clone)]
pub struct DerivStep {
    /// The rule that fired.
    pub rule: RuleName,
    /// Its label (τ, `!c`, `?c`, `$d`).
    pub label: Label,
    /// The thread it fired in, if thread-local.
    pub tid: Option<TidName>,
    /// The state reached, rendered in the paper's notation.
    pub state: String,
}

/// A recorded run: initial state plus the steps taken.
#[derive(Debug, Clone)]
pub struct Derivation {
    /// The initial state, rendered.
    pub initial: String,
    /// The steps, in order.
    pub steps: Vec<DerivStep>,
    /// Whether the run ended in a terminal state (main thread dead).
    pub terminated: bool,
    /// Whether the run ended wedged (no transition enabled, not terminal).
    pub deadlocked: bool,
}

impl Derivation {
    /// Pretty-prints the whole derivation, one rule per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("     {}\n", self.initial));
        for (i, s) in self.steps.iter().enumerate() {
            let tid = s.tid.map(|t| format!(" @{t}")).unwrap_or_default();
            let label = match s.label {
                Label::Tau => String::new(),
                other => format!(" --{other}-->"),
            };
            out.push_str(&format!(
                "{:>4}. {}{}{}\n      {}\n",
                i + 1,
                s.rule,
                tid,
                label,
                s.state
            ));
        }
        if self.terminated {
            out.push_str("      ∎ (main thread finished)\n");
        } else if self.deadlocked {
            out.push_str("      ⊥ (no transition enabled)\n");
        }
        out
    }

    /// The observable labels of the run, in order (τ steps omitted).
    pub fn observables(&self) -> Vec<Label> {
        self.steps
            .iter()
            .map(|s| s.label)
            .filter(|l| *l != Label::Tau)
            .collect()
    }

    /// The rules fired, in order.
    pub fn rules(&self) -> Vec<RuleName> {
        self.steps.iter().map(|s| s.rule).collect()
    }
}

/// Runs the transition system from `init`, letting `choose` pick among
/// the enabled transitions at each step (it receives the rule names and
/// returns an index), for at most `max_steps`.
pub fn derive(
    init: &State,
    config: &RuleConfig,
    max_steps: usize,
    mut choose: impl FnMut(&[(RuleName, Label)]) -> usize,
) -> Derivation {
    let mut state = init.clone();
    let mut steps = Vec::new();
    let mut deadlocked = false;
    for _ in 0..max_steps {
        if state.is_terminal() {
            break;
        }
        let succ = state.successors(config);
        if succ.is_empty() {
            deadlocked = true;
            break;
        }
        let menu: Vec<(RuleName, Label)> = succ.iter().map(|(t, _)| (t.rule, t.label)).collect();
        let i = choose(&menu).min(succ.len() - 1);
        let (t, next) = succ.into_iter().nth(i).expect("index clamped");
        steps.push(DerivStep {
            rule: t.rule,
            label: t.label,
            tid: t.tid,
            state: next.soup.render(),
        });
        state = next;
    }
    Derivation {
        initial: init.soup.render(),
        terminated: state.is_terminal(),
        deadlocked,
        steps,
    }
}

/// [`derive()`] with the always-first choice: the deterministic canonical
/// schedule (thread order is name order).
pub fn derive_first(init: &State, config: &RuleConfig, max_steps: usize) -> Derivation {
    derive(init, config, max_steps, |_| 0)
}

/// [`derive()`] with seeded-random choices.
pub fn derive_random(init: &State, config: &RuleConfig, max_steps: usize, seed: u64) -> Derivation {
    let mut rng = StdRng::seed_from_u64(seed);
    derive(init, config, max_steps, move |menu| {
        rng.gen_range(0..menu.len())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::build::*;

    #[test]
    fn sequential_puts_derivation() {
        let prog = seq(put_char(ch('h')), put_char(ch('i')));
        let d = derive_first(&State::new(prog, ""), &RuleConfig::default(), 100);
        assert!(d.terminated);
        assert!(!d.deadlocked);
        assert_eq!(d.observables(), vec![Label::Put('h'), Label::Put('i')]);
        let rules = d.rules();
        assert_eq!(rules.first(), Some(&crate::rules::RuleName::PutChar));
        assert!(rules.contains(&crate::rules::RuleName::Bind));
        assert_eq!(rules.last(), Some(&crate::rules::RuleName::ReturnGC));
    }

    #[test]
    fn render_is_readable() {
        let prog = put_char(ch('x'));
        let d = derive_first(&State::new(prog, ""), &RuleConfig::default(), 10);
        let text = d.render();
        assert!(text.contains("(PutChar)"), "{text}");
        assert!(text.contains("--!x-->"), "{text}");
        assert!(text.contains("∎"), "{text}");
    }

    #[test]
    fn deadlock_is_marked() {
        let prog = bind(new_empty_mvar(), lam("m", take_mvar(var("m"))));
        let d = derive_first(&State::new(prog, ""), &RuleConfig::default(), 50);
        assert!(d.deadlocked);
        assert!(d.render().contains('⊥'));
    }

    #[test]
    fn random_derivations_replayable() {
        let prog = seq(
            fork(put_char(ch('a'))),
            seq(put_char(ch('b')), put_char(ch('c'))),
        );
        let mk = || State::new(prog.clone(), "");
        let cfg = RuleConfig::default();
        let d1 = derive_random(&mk(), &cfg, 200, 5);
        let d2 = derive_random(&mk(), &cfg, 200, 5);
        assert_eq!(d1.rules(), d2.rules());
        assert_eq!(d1.observables(), d2.observables());
    }

    #[test]
    fn echo_derivation_consumes_input() {
        let prog = bind(get_char(), lam("c", put_char(var("c"))));
        let d = derive_first(&State::new(prog, "Q"), &RuleConfig::default(), 50);
        assert!(d.terminated);
        assert_eq!(d.observables(), vec![Label::Get('Q'), Label::Put('Q')]);
    }
}
