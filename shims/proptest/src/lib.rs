//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of proptest this workspace's tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map`,
//!   `prop_recursive` and `boxed`;
//! * strategies for integer ranges, tuples, `Vec<S>`, [`Just`],
//!   `char::range`, `collection::vec`, and `any::<bool>()`;
//! * the `proptest!`, `prop_oneof!`, `prop_assert!` and
//!   `prop_assert_eq!` macros;
//! * deterministic per-test seeding with failure persistence: failing
//!   case seeds are appended to the sibling `.proptest-regressions`
//!   file as `ccs <seed>` lines and replayed before fresh cases on the
//!   next run. Upstream `cc <hex>` entries are kept but skipped (they
//!   encode the real proptest RNG, which this shim cannot replay).
//!
//! There is no shrinking: a failing case reports its seed, which is
//! already minimal in the sense of being directly replayable.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner;

pub use test_runner::{TestRng, TestRunner};

// ----------------------------------------------------------------------
// Strategy
// ----------------------------------------------------------------------

/// A generator of test values, driven by a [`TestRng`].
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies a pure function to generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a second, value-dependent strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Builds recursive values by applying `expand` up to `depth` times
    /// over `self` as the leaf strategy. The `_desired_size` and
    /// `_expected_branch` hints of real proptest are accepted and
    /// ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let expanded = expand(cur).boxed();
            // Mix the leaf strategy back in at every level so generated
            // values vary in size rather than all reaching full depth.
            cur = Union::new(vec![base.clone(), expanded.clone(), expanded]).boxed();
        }
        cur
    }

    /// Type-erases the strategy behind a cheap-to-clone handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// A `Vec` of strategies generates a `Vec` of values, element-wise.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.new_value(rng)).collect()
    }
}

// ----------------------------------------------------------------------
// arbitrary / any
// ----------------------------------------------------------------------

/// Types with a canonical strategy (`any::<T>()`).
pub mod arbitrary {
    use super::{Strategy, TestRng};

    /// A type with a default generation strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for the type.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Strategy for `bool`: a fair coin.
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty => $name:ident),*) => {$(
            /// Full-range integer strategy.
            pub struct $name;
            impl Strategy for $name {
                type Value = $ty;
                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
            impl Arbitrary for $ty {
                type Strategy = $name;
                fn arbitrary() -> $name { $name }
            }
        )*};
    }

    impl_arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
                        i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64);
}

// ----------------------------------------------------------------------
// char / collection helper modules
// ----------------------------------------------------------------------

/// Character strategies (`prop::char`).
pub mod char {
    use super::{Strategy, TestRng};

    /// Uniform choice in the inclusive scalar range `[lo, hi]`.
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    /// Characters between `lo` and `hi`, inclusive.
    pub fn range(lo: ::core::primitive::char, hi: ::core::primitive::char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = ::core::primitive::char;
        fn new_value(&self, rng: &mut TestRng) -> ::core::primitive::char {
            // Resample on the (rare, surrogate-range) failures.
            loop {
                let span = (self.hi - self.lo + 1) as u64;
                let v = self.lo + rng.below(span) as u32;
                if let Some(c) = ::core::char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

// ----------------------------------------------------------------------
// Config
// ----------------------------------------------------------------------

/// Runner configuration. Only the fields this workspace references are
/// present; construct with struct-update syntax over `default()`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of fresh random cases per test (regression seeds replay in
    /// addition to these).
    pub cases: u32,
    /// Accepted for compatibility; this shim does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

// ----------------------------------------------------------------------
// Macros
// ----------------------------------------------------------------------

/// The proptest entry macro: wraps each `fn name(arg in strategy, ...)`
/// into a deterministic multi-case `#[test]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { cfg = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (cfg = ($config:expr);
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::new(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                    file!(),
                    env!("CARGO_MANIFEST_DIR"),
                );
                while let Some(mut rng) = runner.next_case() {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    let __case_guard = runner.case_guard();
                    $body
                    ::std::mem::forget(__case_guard);
                }
            }
        )*
    };
}

/// Uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

// ----------------------------------------------------------------------
// Prelude
// ----------------------------------------------------------------------

/// Everything tests normally import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::from_seed(3);
        let s = (1u64..10).prop_map(|n| n * 2);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::from_seed(5);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Debug)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = Just(())
            .prop_map(|_| T::Leaf)
            .prop_recursive(3, 10, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::from_seed(11);
        let mut max = 0;
        for _ in 0..200 {
            max = max.max(depth(&s.new_value(&mut rng)));
        }
        assert!(max >= 1, "recursion never fired");
        assert!(max <= 3, "depth bound exceeded: {max}");
    }

    #[test]
    fn collection_vec_respects_size() {
        let mut rng = TestRng::from_seed(9);
        let s = prop::collection::vec(0u8..5, 1..10);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((1..10).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_itself_works(a in 0u64..100, b in 0u64..100) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
