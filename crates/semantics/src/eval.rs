//! The inner, purely-functional semantics (§6.2).
//!
//! The paper stratifies its semantics: an *inner* semantics evaluates pure
//! terms (call-by-name, after \[11\]), defining two mutually exclusive
//! relations — convergence `M ⇓ V` and exceptional convergence `M ⇓ e` —
//! and the outer transition system lifts evaluation with the (Eval) and
//! (Raise) rules.
//!
//! This module implements that inner semantics as a fuel-bounded big-step
//! evaluator over closed terms. Pure code can `raise` exceptions (but not
//! catch them); whether the evaluator reports convergence or exceptional
//! convergence for a given term is deterministic here (leftmost-innermost
//! choice among strict positions), which is one admissible refinement of
//! the paper's imprecise-exceptions nondeterminism.

use std::rc::Rc;

use crate::term::{Exc, PrimOp, Term};

/// The outcome of evaluating a pure term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// `M ⇓ V` — the term converged to the value `V`.
    Value(Rc<Term>),
    /// `M ⇓ e` — the term raised the exception `e` during evaluation.
    Raised(Exc),
    /// The fuel budget ran out: the term may diverge.
    OutOfFuel,
    /// Evaluation got wedged: a free variable at the head, an ill-typed
    /// primitive, or a non-function applied. The term is not part of the
    /// meaningful language; surfaced explicitly rather than panicking so
    /// the model checker can flag bad states.
    Wedged(String),
}

impl Outcome {
    /// Unwraps a converged value.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is not [`Outcome::Value`].
    pub fn unwrap_value(self) -> Rc<Term> {
        match self {
            Outcome::Value(v) => v,
            other => panic!("expected convergence, got {other:?}"),
        }
    }
}

/// Capture-avoiding substitution `M[N/x]`.
///
/// Bound variables that would capture free variables of `N` are renamed
/// with a fresh suffix.
pub fn subst(m: &Rc<Term>, x: &str, n: &Rc<Term>) -> Rc<Term> {
    let fv_n = n.free_vars();
    subst_go(m, x, n, &fv_n, &mut 0)
}

fn subst_go(
    m: &Rc<Term>,
    x: &str,
    n: &Rc<Term>,
    fv_n: &std::collections::BTreeSet<String>,
    fresh: &mut u64,
) -> Rc<Term> {
    match &**m {
        Term::Var(y) => {
            if y == x {
                Rc::clone(n)
            } else {
                Rc::clone(m)
            }
        }
        Term::Lam(y, body) => {
            if y == x {
                // x is shadowed; no substitution under the binder.
                Rc::clone(m)
            } else if fv_n.contains(y) {
                // Rename y to avoid capturing N's free y.
                let mut y2 = format!("{y}'{fresh}");
                *fresh += 1;
                while fv_n.contains(&y2) || body.free_vars().contains(&y2) {
                    y2 = format!("{y}'{fresh}");
                    *fresh += 1;
                }
                let renamed = subst_go(
                    body,
                    y,
                    &Rc::new(Term::Var(y2.clone())),
                    &std::iter::once(y2.clone()).collect(),
                    fresh,
                );
                Rc::new(Term::Lam(y2, subst_go(&renamed, x, n, fv_n, fresh)))
            } else {
                Rc::new(Term::Lam(y.clone(), subst_go(body, x, n, fv_n, fresh)))
            }
        }
        Term::App(a, b) => Rc::new(Term::App(
            subst_go(a, x, n, fv_n, fresh),
            subst_go(b, x, n, fv_n, fresh),
        )),
        Term::If(c, t, e) => Rc::new(Term::If(
            subst_go(c, x, n, fv_n, fresh),
            subst_go(t, x, n, fv_n, fresh),
            subst_go(e, x, n, fv_n, fresh),
        )),
        Term::Prim(op, a, b) => Rc::new(Term::Prim(
            *op,
            subst_go(a, x, n, fv_n, fresh),
            subst_go(b, x, n, fv_n, fresh),
        )),
        Term::Raise(e) => Rc::new(Term::Raise(subst_go(e, x, n, fv_n, fresh))),
        Term::Con(k, args) => Rc::new(Term::Con(
            k.clone(),
            args.iter()
                .map(|a| subst_go(a, x, n, fv_n, fresh))
                .collect(),
        )),
        Term::Return(a) => Rc::new(Term::Return(subst_go(a, x, n, fv_n, fresh))),
        Term::Bind(a, b) => Rc::new(Term::Bind(
            subst_go(a, x, n, fv_n, fresh),
            subst_go(b, x, n, fv_n, fresh),
        )),
        Term::PutChar(a) => Rc::new(Term::PutChar(subst_go(a, x, n, fv_n, fresh))),
        Term::PutMVar(a, b) => Rc::new(Term::PutMVar(
            subst_go(a, x, n, fv_n, fresh),
            subst_go(b, x, n, fv_n, fresh),
        )),
        Term::TakeMVar(a) => Rc::new(Term::TakeMVar(subst_go(a, x, n, fv_n, fresh))),
        Term::Sleep(a) => Rc::new(Term::Sleep(subst_go(a, x, n, fv_n, fresh))),
        Term::Fork(a) => Rc::new(Term::Fork(subst_go(a, x, n, fv_n, fresh))),
        Term::Throw(a) => Rc::new(Term::Throw(subst_go(a, x, n, fv_n, fresh))),
        Term::Catch(a, b) => Rc::new(Term::Catch(
            subst_go(a, x, n, fv_n, fresh),
            subst_go(b, x, n, fv_n, fresh),
        )),
        Term::ThrowTo(a, b) => Rc::new(Term::ThrowTo(
            subst_go(a, x, n, fv_n, fresh),
            subst_go(b, x, n, fv_n, fresh),
        )),
        Term::Block(a) => Rc::new(Term::Block(subst_go(a, x, n, fv_n, fresh))),
        Term::Unblock(a) => Rc::new(Term::Unblock(subst_go(a, x, n, fv_n, fresh))),
        Term::Unit
        | Term::Bool(_)
        | Term::Int(_)
        | Term::Char(_)
        | Term::ExcLit(_)
        | Term::MVarRef(_)
        | Term::TidRef(_)
        | Term::GetChar
        | Term::NewEmptyMVar
        | Term::MyThreadId => Rc::clone(m),
    }
}

/// Native-stack guard: evaluation deeper than this reports
/// [`Outcome::OutOfFuel`] (the term is treated as divergent). The pure
/// fragments of the paper's programs are all shallow; only intentionally
/// divergent terms (Ω) hit this.
const MAX_EVAL_DEPTH: u32 = 300;

/// Evaluates a pure term to a Figure 1 value, with a fuel bound.
///
/// Implements the inner semantics: `M ⇓ V` yields [`Outcome::Value`],
/// `M ⇓ e` yields [`Outcome::Raised`].
pub fn eval(m: &Rc<Term>, fuel: &mut u64) -> Outcome {
    eval_at(m, fuel, 0)
}

fn eval_at(m: &Rc<Term>, fuel: &mut u64, depth: u32) -> Outcome {
    if *fuel == 0 || depth > MAX_EVAL_DEPTH {
        return Outcome::OutOfFuel;
    }
    *fuel -= 1;
    if m.is_value() {
        return Outcome::Value(Rc::clone(m));
    }
    match &**m {
        Term::App(f, a) => match eval_at(f, fuel, depth + 1) {
            Outcome::Value(fv) => match &*fv {
                Term::Lam(x, body) => eval_at(&subst(body, x, a), fuel, depth + 1),
                other => Outcome::Wedged(format!("applied non-function: {other}")),
            },
            other => other,
        },
        Term::If(c, t, e) => match eval_at(c, fuel, depth + 1) {
            Outcome::Value(cv) => match &*cv {
                Term::Bool(true) => eval_at(t, fuel, depth + 1),
                Term::Bool(false) => eval_at(e, fuel, depth + 1),
                other => Outcome::Wedged(format!("if on non-boolean: {other}")),
            },
            other => other,
        },
        Term::Prim(op, a, b) => {
            let av = match eval_at(a, fuel, depth + 1) {
                Outcome::Value(v) => v,
                other => return other,
            };
            let bv = match eval_at(b, fuel, depth + 1) {
                Outcome::Value(v) => v,
                other => return other,
            };
            match (&*av, &*bv) {
                (Term::Int(x), Term::Int(y)) => prim_int(*op, *x, *y),
                _ => Outcome::Wedged(format!(
                    "primitive {} on non-integers: {av}, {bv}",
                    op.symbol()
                )),
            }
        }
        Term::Raise(e) => match eval_at(e, fuel, depth + 1) {
            Outcome::Value(ev) => match &*ev {
                Term::ExcLit(exc) => Outcome::Raised(exc.clone()),
                other => Outcome::Wedged(format!("raise of non-exception: {other}")),
            },
            other => other,
        },
        // Monadic operations with unevaluated strict arguments: evaluate
        // the argument, then rebuild (putChar is "a strict data
        // constructor", §6).
        Term::PutChar(a) => strict1(a, fuel, depth, Term::PutChar),
        Term::TakeMVar(a) => strict1(a, fuel, depth, Term::TakeMVar),
        Term::Sleep(a) => strict1(a, fuel, depth, Term::Sleep),
        Term::Throw(a) => strict1(a, fuel, depth, Term::Throw),
        Term::PutMVar(a, b) => {
            let b = Rc::clone(b);
            strict1(a, fuel, depth, move |v| Term::PutMVar(v, Rc::clone(&b)))
        }
        Term::ThrowTo(a, b) => {
            let av = match eval_at(a, fuel, depth + 1) {
                Outcome::Value(v) => v,
                other => return other,
            };
            let bv = match eval_at(b, fuel, depth + 1) {
                Outcome::Value(v) => v,
                other => return other,
            };
            Outcome::Value(Rc::new(Term::ThrowTo(av, bv)))
        }
        Term::Var(x) => Outcome::Wedged(format!("free variable {x}")),
        _ => Outcome::Wedged(format!("no evaluation rule for {m}")),
    }
}

fn strict1(
    a: &Rc<Term>,
    fuel: &mut u64,
    depth: u32,
    rebuild: impl FnOnce(Rc<Term>) -> Term,
) -> Outcome {
    match eval_at(a, fuel, depth + 1) {
        Outcome::Value(v) => Outcome::Value(Rc::new(rebuild(v))),
        other => other,
    }
}

fn prim_int(op: PrimOp, x: i64, y: i64) -> Outcome {
    match op {
        PrimOp::Add => Outcome::Value(Rc::new(Term::Int(x.wrapping_add(y)))),
        PrimOp::Sub => Outcome::Value(Rc::new(Term::Int(x.wrapping_sub(y)))),
        PrimOp::Mul => Outcome::Value(Rc::new(Term::Int(x.wrapping_mul(y)))),
        PrimOp::Div => {
            if y == 0 {
                Outcome::Raised(Exc::divide_by_zero())
            } else {
                Outcome::Value(Rc::new(Term::Int(x.wrapping_div(y))))
            }
        }
        PrimOp::Eq => Outcome::Value(Rc::new(Term::Bool(x == y))),
        PrimOp::Lt => Outcome::Value(Rc::new(Term::Bool(x < y))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::build::*;

    fn ev(t: crate::term::build::T) -> Outcome {
        let mut fuel = 100_000;
        eval(&t, &mut fuel)
    }

    #[test]
    fn beta_reduction() {
        let t = app(lam("x", add(var("x"), int(1))), int(41));
        assert_eq!(ev(t), Outcome::Value(int(42)));
    }

    #[test]
    fn call_by_name_ignores_unused_divergence() {
        // (\x -> 7) Ω converges under call-by-name.
        let omega = app(
            lam("w", app(var("w"), var("w"))),
            lam("w", app(var("w"), var("w"))),
        );
        let t = app(lam("x", int(7)), omega);
        assert_eq!(ev(t), Outcome::Value(int(7)));
    }

    #[test]
    fn divergence_exhausts_fuel() {
        let omega = app(
            lam("w", app(var("w"), var("w"))),
            lam("w", app(var("w"), var("w"))),
        );
        assert_eq!(ev(omega), Outcome::OutOfFuel);
    }

    #[test]
    fn conditionals() {
        let t = ite(
            prim(crate::term::PrimOp::Lt, int(1), int(2)),
            int(10),
            int(20),
        );
        assert_eq!(ev(t), Outcome::Value(int(10)));
    }

    #[test]
    fn divide_by_zero_raises() {
        assert_eq!(
            ev(div(int(1), int(0))),
            Outcome::Raised(Exc::divide_by_zero())
        );
    }

    #[test]
    fn raise_propagates_through_context() {
        // raise inside an argument that *is* demanded.
        let t = add(int(1), raise(exc("Boom")));
        assert_eq!(ev(t), Outcome::Raised(Exc::new("Boom")));
    }

    #[test]
    fn convergence_and_raising_are_exclusive() {
        // The same term cannot both converge and raise: evaluation is a
        // function of the term here (deterministic refinement).
        let t = add(raise(exc("A")), raise(exc("B")));
        assert_eq!(ev(t.clone()), Outcome::Raised(Exc::new("A")));
        assert_eq!(ev(t), Outcome::Raised(Exc::new("A")));
    }

    #[test]
    fn strict_monadic_argument_evaluated() {
        // putChar (chr 65): we model chr via arithmetic on chars being
        // unavailable, so use an if: putChar (if true then 'A' else 'B').
        let t = put_char(ite(boolean(true), ch('A'), ch('B')));
        let v = ev(t).unwrap_value();
        assert_eq!(*v, crate::term::Term::PutChar(ch('A')));
        assert!(v.is_value());
    }

    #[test]
    fn sleep_argument_computed() {
        let t = sleep(add(int(2), int(3)));
        let v = ev(t).unwrap_value();
        assert_eq!(v.to_string(), "(sleep 5)");
    }

    #[test]
    fn raising_inside_strict_argument() {
        let t = put_char(raise(exc("E")));
        assert_eq!(ev(t), Outcome::Raised(Exc::new("E")));
    }

    #[test]
    fn capture_avoiding_substitution() {
        // (\x -> \y -> x) y  ⇓  \y' -> y  (not \y -> y!)
        let t = app(lam("x", lam("y", var("x"))), var("y"));
        let v = ev(t).unwrap_value();
        match &*v {
            crate::term::Term::Lam(b, body) => {
                assert_ne!(b, "y");
                assert_eq!(**body, crate::term::Term::Var("y".into()));
            }
            other => panic!("expected lambda, got {other}"),
        }
    }

    #[test]
    fn free_variable_is_wedged() {
        assert!(matches!(ev(add(var("x"), int(1))), Outcome::Wedged(_)));
    }

    #[test]
    fn ill_typed_application_is_wedged() {
        assert!(matches!(ev(app(int(3), int(4))), Outcome::Wedged(_)));
    }

    #[test]
    fn recursion_via_y_combinator() {
        // Y f = (\x -> f (x x)) (\x -> f (x x)) — call-by-name Y works.
        let y = lam(
            "f",
            app(
                lam("x", app(var("f"), app(var("x"), var("x")))),
                lam("x", app(var("f"), app(var("x"), var("x")))),
            ),
        );
        // fact = Y (\rec -> \n -> if n == 0 then 1 else n * rec (n - 1))
        let fact = app(
            y,
            lam(
                "rec",
                lam(
                    "n",
                    ite(
                        prim(crate::term::PrimOp::Eq, var("n"), int(0)),
                        int(1),
                        prim(
                            crate::term::PrimOp::Mul,
                            var("n"),
                            app(var("rec"), prim(crate::term::PrimOp::Sub, var("n"), int(1))),
                        ),
                    ),
                ),
            ),
        );
        assert_eq!(ev(app(fact, int(5))), Outcome::Value(int(120)));
    }
}
