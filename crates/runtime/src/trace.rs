//! Observable I/O traces.
//!
//! The paper's outer semantics labels transitions with events: `!c`
//! (writing character `c`), `?c` (reading `c`) and `$d` (time passing).
//! The runtime records the same events so that the conformance tests can
//! check every concrete execution against the trace set admitted by the
//! formal labelled transition system.
//!
//! With [`RuntimeConfig::record_sched_events`](crate::config::RuntimeConfig)
//! enabled, the trace additionally records *scheduler-visible* events —
//! forks, `throwTo`s, mask transitions and blocking — which the schedule
//! explorer uses to report what a failing interleaving actually did.
//! These are off by default, so `render_trace` output for existing
//! programs is unchanged.

use crate::ids::ThreadId;

/// Which kind of resource a thread blocked on (for
/// [`IoEvent::BlockedOn`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockSite {
    /// `takeMVar` on an empty cell.
    TakeMVar,
    /// `putMVar` on a full cell.
    PutMVar,
    /// `sleep`.
    Sleep,
    /// `getChar` with no input available.
    GetChar,
    /// Synchronous `throwTo` (§9) waiting for delivery.
    SyncThrow,
}

impl std::fmt::Display for BlockSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BlockSite::TakeMVar => "takeMVar",
            BlockSite::PutMVar => "putMVar",
            BlockSite::Sleep => "sleep",
            BlockSite::GetChar => "getChar",
            BlockSite::SyncThrow => "syncThrowTo",
        };
        f.write_str(s)
    }
}

/// One observable event of an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoEvent {
    /// `!c` — a character written to standard output.
    Put(char),
    /// `?c` — a character read from standard input.
    Get(char),
    /// `$d` — the virtual clock advanced by `d` microseconds.
    TimeAdvance(u64),
    /// Scheduler event: `parent` forked `child`.
    Fork {
        /// The forking thread.
        parent: ThreadId,
        /// The new thread.
        child: ThreadId,
    },
    /// Scheduler event: `from` executed a `throwTo` aimed at `to`.
    ThrowTo {
        /// The throwing thread.
        from: ThreadId,
        /// The target thread.
        to: ThreadId,
    },
    /// Scheduler event: the thread entered a `block` scope.
    Mask(ThreadId),
    /// Scheduler event: the thread entered an `unblock` scope.
    Unmask(ThreadId),
    /// Scheduler event: the thread blocked on a resource.
    BlockedOn {
        /// The blocking thread.
        tid: ThreadId,
        /// What it blocked on.
        site: BlockSite,
    },
}

impl std::fmt::Display for IoEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoEvent::Put(c) => write!(f, "!{c}"),
            IoEvent::Get(c) => write!(f, "?{c}"),
            IoEvent::TimeAdvance(d) => write!(f, "${d}"),
            IoEvent::Fork { parent, child } => {
                write!(f, "[t{}+t{}]", parent.index(), child.index())
            }
            IoEvent::ThrowTo { from, to } => write!(f, "[t{}^t{}]", from.index(), to.index()),
            IoEvent::Mask(t) => write!(f, "[t{}#b]", t.index()),
            IoEvent::Unmask(t) => write!(f, "[t{}#u]", t.index()),
            IoEvent::BlockedOn { tid, site } => write!(f, "[t{}*{site}]", tid.index()),
        }
    }
}

/// Renders a trace as a compact string, e.g. `"!h!i$5?x"`.
pub fn render_trace(events: &[IoEvent]) -> String {
    events.iter().map(|e| e.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::tid;

    #[test]
    fn display_forms() {
        assert_eq!(IoEvent::Put('a').to_string(), "!a");
        assert_eq!(IoEvent::Get('b').to_string(), "?b");
        assert_eq!(IoEvent::TimeAdvance(10).to_string(), "$10");
    }

    #[test]
    fn render_concatenates() {
        let t = [
            IoEvent::Put('h'),
            IoEvent::Put('i'),
            IoEvent::TimeAdvance(5),
        ];
        assert_eq!(render_trace(&t), "!h!i$5");
    }

    #[test]
    fn scheduler_event_forms() {
        assert_eq!(
            IoEvent::Fork {
                parent: tid(0),
                child: tid(1)
            }
            .to_string(),
            "[t0+t1]"
        );
        assert_eq!(
            IoEvent::ThrowTo {
                from: tid(0),
                to: tid(2)
            }
            .to_string(),
            "[t0^t2]"
        );
        assert_eq!(IoEvent::Mask(tid(1)).to_string(), "[t1#b]");
        assert_eq!(IoEvent::Unmask(tid(1)).to_string(), "[t1#u]");
        assert_eq!(
            IoEvent::BlockedOn {
                tid: tid(3),
                site: BlockSite::TakeMVar
            }
            .to_string(),
            "[t3*takeMVar]"
        );
    }
}
