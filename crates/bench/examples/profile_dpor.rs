//! Profile one DPOR exploration of the 5-thread log fan-in workload:
//! prints the coverage counters and the replay/analysis wall-clock
//! split. Handy for checking the incremental-analysis and
//! subtree-skip machinery against the golden BENCH_explore.json
//! numbers without running the whole bench suite:
//!
//! ```text
//! cargo run --release -p conch-bench --example profile_dpor
//! ```

use std::time::Instant;

use conch_bench::{explore_reduced, log_fanin_workload};
use conch_explore::Reduction;

fn main() {
    let start = Instant::now();
    let report = explore_reduced(Reduction::Dpor, None, 1, || log_fanin_workload(4, 4));
    let secs = start.elapsed().as_secs_f64();
    println!(
        "explored={} pruned={} races={} backtracks={} complete={} secs={:.2}",
        report.explored,
        report.pruned,
        report.stats.races_detected,
        report.stats.backtracks_installed,
        report.complete,
        secs
    );
    println!(
        "replay_s={:.2} analysis_s={:.2}",
        report.timing.replay_seconds, report.timing.analysis_seconds
    );
}
