//! Console I/O substrate.
//!
//! The paper's canonical I/O operations are `putChar` and `getChar`
//! (rules (PutChar), (GetChar), (Stuck GetChar)). To keep the runtime
//! deterministic and testable we route them through a [`Console`] trait
//! with an in-memory [`BufferConsole`] implementation: input is a
//! pre-loaded buffer (possibly extended between runs), output is an
//! accumulating string. `getChar` on an exhausted input buffer leaves the
//! thread stuck — exactly the (Stuck GetChar) rule — where it remains
//! interruptible by asynchronous exceptions.

use std::collections::VecDeque;

/// A source of input characters and sink of output characters.
pub trait Console {
    /// Attempts to read one character; `None` means "no input available
    /// right now" (the thread blocks, per rule (Stuck GetChar)).
    fn try_read(&mut self) -> Option<char>;

    /// Writes one character.
    fn write(&mut self, c: char);

    /// Everything written so far.
    fn output(&self) -> &str;
}

/// An in-memory console: deterministic input, accumulated output.
///
/// # Examples
///
/// ```
/// use conch_runtime::console::{BufferConsole, Console};
///
/// let mut con = BufferConsole::with_input("hi");
/// assert_eq!(con.try_read(), Some('h'));
/// con.write('!');
/// assert_eq!(con.output(), "!");
/// ```
#[derive(Debug, Default)]
pub struct BufferConsole {
    input: VecDeque<char>,
    output: String,
}

impl BufferConsole {
    /// A console with no input.
    pub fn new() -> Self {
        BufferConsole::default()
    }

    /// A console pre-loaded with `input`.
    pub fn with_input(input: impl Into<String>) -> Self {
        BufferConsole {
            input: input.into().chars().collect(),
            output: String::new(),
        }
    }

    /// Appends more input (e.g. between two `Runtime::run` calls).
    pub fn feed(&mut self, input: impl Into<String>) {
        self.input.extend(input.into().chars());
    }

    /// Number of unread input characters.
    pub fn pending_input(&self) -> usize {
        self.input.len()
    }
}

impl Console for BufferConsole {
    fn try_read(&mut self) -> Option<char> {
        self.input.pop_front()
    }

    fn write(&mut self, c: char) {
        self.output.push(c);
    }

    fn output(&self) -> &str {
        &self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_in_order() {
        let mut con = BufferConsole::with_input("ab");
        assert_eq!(con.try_read(), Some('a'));
        assert_eq!(con.try_read(), Some('b'));
        assert_eq!(con.try_read(), None);
    }

    #[test]
    fn writes_accumulate() {
        let mut con = BufferConsole::new();
        con.write('x');
        con.write('y');
        assert_eq!(con.output(), "xy");
    }

    #[test]
    fn feed_appends() {
        let mut con = BufferConsole::with_input("a");
        con.feed("b");
        assert_eq!(con.pending_input(), 2);
        assert_eq!(con.try_read(), Some('a'));
        assert_eq!(con.try_read(), Some('b'));
    }
}
