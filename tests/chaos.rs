//! Chaos testing: the runtime's internal invariants under heavy random
//! fire. No specific behaviour is asserted about the *programs* — only
//! that the machine itself never wedges unexpectedly, never loses track
//! of a thread, and keeps its accounting consistent, across thousands of
//! randomly scheduled, exception-riddled runs.

use conch_combinators::{finally, modify_mvar, race, timeout, Chan, Sem};
use conch_runtime::prelude::*;
use proptest::prelude::*;

/// A tangle of everything: semaphore-gated workers hammering a counter,
/// a channel pipeline, a racer, timeouts, and a killer spraying
/// exceptions at every thread id it has seen.
fn tangle(workers: u64, kills: u64) -> Io<i64> {
    Io::new_mvar(0_i64).and_then(move |counter| {
        Sem::new(2).and_then(move |sem| {
            Chan::<i64>::new().and_then(move |pipe| {
                Io::new_mvar(Value::List(Vec::new())).and_then(move |tids| {
                    let remember = move |t: ThreadId| {
                        modify_mvar(tids, move |v: Value| {
                            let mut xs = match v {
                                Value::List(xs) => xs,
                                _ => unreachable!(),
                            };
                            xs.push(Value::ThreadId(t));
                            Io::pure(Value::List(xs))
                        })
                    };
                    // Workers: gated increments + pipeline sends, wrapped in
                    // finally so their bookkeeping survives kills.
                    let spawn_workers = conch_runtime::io::for_each(workers, move |i| {
                        let job = sem.with(move || {
                            Io::compute(20 + i * 7)
                                .then(modify_mvar(counter, |n| Io::pure(n + 1)))
                                .then(pipe.send(i as i64))
                                .then(Io::pure(0_i64))
                        });
                        let guarded = finally(job, Io::unit).map(|_| ()).catch(|_| Io::unit());
                        Io::fork(guarded).and_then(remember)
                    });
                    // A consumer that drains the pipe under a timeout.
                    let consumer = timeout(
                        50_000,
                        conch_runtime::io::replicate(workers, move || pipe.recv()),
                    )
                    .map(|_| ())
                    .catch(|_| Io::unit());
                    // A racer that may or may not finish.
                    let racer = race(Io::sleep(100).map(|_| 1_i64), Io::compute_returning(500, 2))
                        .map(|_| ())
                        .catch(|_| Io::unit());
                    // The killer: sprays kills at remembered tids.
                    let killer = conch_runtime::io::for_each(kills, move |k| {
                        conch_combinators::with_mvar(tids, move |v: Value| {
                            let xs = match v {
                                Value::List(xs) => xs,
                                _ => unreachable!(),
                            };
                            if xs.is_empty() {
                                Io::unit()
                            } else {
                                let t = xs[(k as usize * 7 + 3) % xs.len()]
                                    .as_thread_id()
                                    .expect("stored tids");
                                Io::throw_to(t, Exception::kill_thread())
                            }
                        })
                        .then(Io::yield_now())
                    });
                    spawn_workers
                        .then(Io::fork(consumer))
                        .then(Io::fork(racer))
                        .then(killer)
                        .then(Io::sleep(1_000_000)) // settle
                        .then(conch_combinators::with_mvar(counter, Io::pure))
                })
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn machine_invariants_under_chaos(
        workers in 1u64..8,
        kills in 0u64..12,
        seed in 0u64..100_000,
        quantum in 1u64..15,
    ) {
        let cfg = RuntimeConfig::new()
            .random_scheduling(seed)
            .quantum(quantum)
            .max_steps(2_000_000);
        let mut rt = Runtime::with_config(cfg);
        let result = rt.run(tangle(workers, kills));
        // The harness itself must terminate (settling sleep ends the run).
        let counter = result.expect("chaos harness must not wedge the machine");
        // Invariants:
        let st = rt.stats();
        // 1. No worker increments more than once; no phantom increments.
        prop_assert!((0..=workers as i64).contains(&counter), "counter {counter}");
        // 2. Every fork is accounted for: finished, died, or reaped at
        //    ProcGC (none unaccounted negative).
        prop_assert!(st.finished_threads + st.died_threads <= st.forks + 1);
        // 3. Deliveries never exceed throws plus deadlock-recovery.
        prop_assert!(st.total_deliveries() <= st.throwtos + kills + 4);
        // 4. Mask-frame accounting stayed sane.
        prop_assert!(st.max_mask_frames <= st.max_stack_depth.max(2));
    }
}

/// The same tangle, deterministic, repeated on one runtime instance:
/// reuse must not leak state between runs.
#[test]
fn runtime_reuse_is_clean() {
    let mut rt = Runtime::with_config(RuntimeConfig::new().random_scheduling(1).quantum(5));
    let mut outcomes = Vec::new();
    for _ in 0..5 {
        let c = rt.run(tangle(4, 6)).expect("run completes");
        outcomes.push(c);
        assert!((0..=4).contains(&c));
    }
    // Same seed would not repeat (the RNG advances), but every run obeys
    // the invariant and the runtime survived five chaotic lifecycles.
    assert_eq!(outcomes.len(), 5);
}

/// A miniature of the tangle — one guarded worker, one killer — but
/// explored *systematically* instead of sampled: every interleaving and
/// every delivery point within bounds, with the same machine invariants
/// asserted on each. Random chaos finds what it finds; this finds
/// everything at its (small) scale.
#[test]
fn mini_tangle_is_sane_on_every_schedule() {
    use conch_explore::{ExploreConfig, Explorer, RunOutcome, TestCase};

    let cfg = ExploreConfig {
        max_schedules: 50_000,
        ..ExploreConfig::default()
    };
    let result = Explorer::with_config(cfg).check(|| {
        let prog = Io::new_mvar(0_i64).and_then(|counter| {
            Io::fork(modify_mvar(counter, |n| Io::pure(n + 1)).catch(|_| Io::unit()))
                .and_then(|w| Io::throw_to(w, Exception::kill_thread()))
                .then(Io::sleep(10))
                .then(conch_combinators::with_mvar(counter, Io::pure))
        });
        TestCase::new(prog, |out: &RunOutcome<i64>| match &out.result {
            // The kill may land before or after the increment, but the
            // exception-safe modify_mvar must never lose the cell: the
            // final with_mvar read must always succeed.
            Ok(0) | Ok(1) => Ok(()),
            other => Err(format!("counter corrupted or machine wedged: {other:?}")),
        })
    });
    let report = result.expect_pass();
    assert!(report.complete, "mini-tangle must be exhaustive: {report}");
    assert!(report.explored > 1, "expected real branching: {report}");
}
