//! Exhaustively exploring a fault × schedule space against the httpd
//! server, and proving it recovers on every branch of both.
//!
//! Run with `cargo run --release --example fault_storm`.
//!
//! Two canonical spaces from [`conch::faults::spaces`] are explored to
//! completion under DPOR with preemption bound 2:
//!
//! * **connection faults** — one client visit where the injector
//!   chooses, as an explorer branch point, between a healthy request,
//!   dropping the connection, stalling forever, closing mid-request,
//!   and sending garbage;
//! * **kill storm** — a stalled connection parks a worker mid-read,
//!   then the explorer decides where a `throwTo KillThread` storm
//!   lands.
//!
//! On *every* schedule of *every* fault arm, three invariants are
//! checked after the quiescent audit (`shutdown_sync → drain →
//! snapshot`):
//!
//! 1. **still serving** — a healthy probe sent after the fault episode
//!    is answered `200`;
//! 2. **no leaks** — `drain` terminates with `active == 0`: no worker
//!    thread or connection outlives its request;
//! 3. **conservation** — `accepted == served + timed-out + errored +
//!    aborted + killed + shed`: every accepted connection gets exactly
//!    one outcome, wherever the kill landed.
//!
//! Each space is then re-explored on the 4-worker work-stealing engine
//! and the coverage reports are asserted bit-identical — determinism
//! extended over fault branch points.

use conch::explore::{
    CheckResult, ExploreConfig, Explorer, Reduction, Report, RunOutcome, Strategy, TestCase,
};
use conch::faults::spaces::{conn_fault_space, holds_invariants, storm_space};
use conch::httpd::server::StatsSnapshot;
use conch::runtime::io::Io;

type Space = fn() -> Io<(i64, i64, StatsSnapshot)>;

fn check(out: &RunOutcome<(i64, i64, StatsSnapshot)>) -> Result<(), String> {
    match &out.result {
        Ok(v) => holds_invariants(v),
        Err(e) => Err(format!("run failed: {e:?}")),
    }
}

fn explore(space: Space, workers: usize) -> Report {
    // Preemption bound 2 keeps the schedule dimension tractable while
    // fault arms and delivery points still branch fully (only
    // preemptive switches are rationed), so fault coverage is
    // exhaustive; unbounded, the conn space runs past 400k schedules
    // without converging.
    let explorer = Explorer::with_config(ExploreConfig {
        max_schedules: 100_000,
        max_depth: 512,
        step_budget: 100_000,
        preemption_bound: Some(2),
        strategy: Strategy::Exhaustive(Reduction::Dpor),
        ..ExploreConfig::default()
    });
    let result = if workers == 1 {
        explorer.check(|| TestCase::new(space(), check))
    } else {
        explorer.check_parallel(workers, move || TestCase::new(space(), check))
    };
    match result {
        CheckResult::Passed(report) => *report,
        CheckResult::Failed(f) => {
            println!("invariant VIOLATED: {}", f.message);
            println!("  shrunk certificate: {}", f.schedule);
            std::process::exit(1);
        }
    }
}

fn main() {
    for (name, space) in [
        ("connection faults", conn_fault_space as Space),
        ("kill storm", storm_space as Space),
    ] {
        println!("== {name} ==");
        let sequential = explore(space, 1);
        assert!(
            sequential.complete,
            "exploration must be exhaustive: {sequential:?}"
        );
        assert!(
            sequential.faults_injected > 0,
            "the fault arms must actually be visited: {sequential:?}"
        );
        println!(
            "  explored {} schedules ({} pruned, {} faults injected), complete: {}",
            sequential.explored, sequential.pruned, sequential.faults_injected, sequential.complete,
        );
        println!("  invariants held on every schedule: still serving (probe answered 200),");
        println!("  no leaked workers or connections (drained to active == 0),");
        println!("  counters conserved (accepted == outcomes).");

        let parallel = explore(space, 4);
        assert_eq!(
            sequential, parallel,
            "coverage must be bit-identical across engines"
        );
        println!("  4-worker engine: identical report, bit for bit.\n");
    }
    println!("both fault × schedule spaces verified exhaustively.");
}
