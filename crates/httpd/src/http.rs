//! A small HTTP/1.0 subset: request parsing and response rendering.
//!
//! Pure Rust (no `Io`): parsing operates on the full request text after
//! the network layer has accumulated it. Enough of the protocol for the
//! paper's case-study workloads — request line, headers, no bodies.

use std::collections::BTreeMap;
use std::fmt;

/// An HTTP request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// `GET`.
    Get,
    /// `HEAD`.
    Head,
    /// `POST` (accepted, though bodies are not transported).
    Post,
}

impl Method {
    fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "HEAD" => Some(Method::Head),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
        })
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The request path, e.g. `/index.html`.
    pub path: String,
    /// Headers, lower-cased names.
    pub headers: BTreeMap<String, String>,
}

impl Request {
    /// A minimal GET request for `path`.
    pub fn get(path: impl Into<String>) -> Request {
        Request {
            method: Method::Get,
            path: path.into(),
            headers: BTreeMap::new(),
        }
    }

    /// Renders the request as wire text (for the client side).
    pub fn render(&self) -> String {
        let mut s = format!("{} {} HTTP/1.0\r\n", self.method, self.path);
        for (k, v) in &self.headers {
            s.push_str(&format!("{k}: {v}\r\n"));
        }
        s.push_str("\r\n");
        s
    }
}

/// Why a request failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseRequestError {
    /// The request text was empty.
    Empty,
    /// The request line was not `METHOD PATH VERSION`.
    BadRequestLine(String),
    /// Unknown method token.
    BadMethod(String),
    /// A header line had no colon.
    BadHeader(String),
}

impl fmt::Display for ParseRequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseRequestError::Empty => f.write_str("empty request"),
            ParseRequestError::BadRequestLine(l) => write!(f, "malformed request line {l:?}"),
            ParseRequestError::BadMethod(m) => write!(f, "unknown method {m:?}"),
            ParseRequestError::BadHeader(h) => write!(f, "malformed header {h:?}"),
        }
    }
}

impl std::error::Error for ParseRequestError {}

/// Parses the text of a request (everything up to the blank line).
///
/// # Errors
///
/// Returns a [`ParseRequestError`] describing the first malformed line.
pub fn parse_request(text: &str) -> Result<Request, ParseRequestError> {
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .filter(|l| !l.is_empty())
        .ok_or(ParseRequestError::Empty)?;
    let mut parts = request_line.split_whitespace();
    let (method, path, _version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(ParseRequestError::BadRequestLine(request_line.to_owned())),
    };
    let method =
        Method::parse(method).ok_or_else(|| ParseRequestError::BadMethod(method.to_owned()))?;
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| ParseRequestError::BadHeader(line.to_owned()))?;
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_owned());
    }
    Ok(Request {
        method,
        path: path.to_owned(),
        headers,
    })
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The body text.
    pub body: String,
    /// Optional `Retry-After` header value (virtual seconds) — the
    /// load-shedding 503 path uses it to tell clients when to come back.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A `200 OK` response with a body.
    pub fn ok(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            body: body.into(),
            retry_after: None,
        }
    }

    /// A response with an arbitrary status and a default reason body.
    pub fn status(status: u16) -> Response {
        Response {
            status,
            body: reason(status).to_owned(),
            retry_after: None,
        }
    }

    /// A `503 Service Unavailable` carrying a `Retry-After` hint — the
    /// graceful-degradation answer an overloaded server sheds load with.
    pub fn unavailable(retry_after: u64) -> Response {
        Response {
            status: 503,
            body: reason(503).to_owned(),
            retry_after: Some(retry_after),
        }
    }

    /// Renders the response as wire text.
    pub fn render(&self) -> String {
        let retry = match self.retry_after {
            Some(secs) => format!("Retry-After: {secs}\r\n"),
            None => String::new(),
        };
        format!(
            "HTTP/1.0 {} {}\r\n{}Content-Length: {}\r\n\r\n{}",
            self.status,
            reason(self.status),
            retry,
            self.body.len(),
            self.body
        )
    }
}

impl conch_runtime::value::IntoValue for Response {
    fn into_value(self) -> conch_runtime::value::Value {
        use conch_runtime::value::Value;
        // retry_after encodes as -1 for "no header" (it is a duration,
        // so every real value is non-negative).
        let retry = self.retry_after.map_or(-1, |s| s as i64);
        Value::List(vec![
            Value::Int(i64::from(self.status)),
            Value::Str(self.body),
            Value::Int(retry),
        ])
    }
}

impl conch_runtime::value::FromValue for Response {
    fn from_value(v: conch_runtime::value::Value) -> Option<Self> {
        use conch_runtime::value::Value;
        match v {
            Value::List(xs) if xs.len() == 3 => {
                let mut it = xs.into_iter();
                let status = u16::try_from(it.next()?.as_int()?).ok()?;
                let body = match it.next()? {
                    Value::Str(s) => s,
                    _ => return None,
                };
                let retry = it.next()?.as_int()?;
                Some(Response {
                    status,
                    body,
                    retry_after: (retry >= 0).then_some(retry as u64),
                })
            }
            _ => None,
        }
    }
}

/// The standard reason phrase for the status codes the server uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_get() {
        let r = parse_request("GET /x HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/x");
        assert!(r.headers.is_empty());
    }

    #[test]
    fn parses_headers_case_insensitively() {
        let r = parse_request("GET / HTTP/1.0\r\nHost: example\r\nX-Thing: 2\r\n\r\n").unwrap();
        assert_eq!(r.headers["host"], "example");
        assert_eq!(r.headers["x-thing"], "2");
    }

    #[test]
    fn request_render_round_trips() {
        let mut req = Request::get("/a/b");
        req.headers.insert("host".into(), "h".into());
        let parsed = parse_request(&req.render()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn rejects_bad_request_line() {
        assert!(matches!(
            parse_request("GARBAGE\r\n\r\n"),
            Err(ParseRequestError::BadRequestLine(_))
        ));
        assert!(matches!(parse_request(""), Err(ParseRequestError::Empty)));
    }

    #[test]
    fn rejects_unknown_method() {
        assert!(matches!(
            parse_request("BREW /pot HTTP/1.0\r\n\r\n"),
            Err(ParseRequestError::BadMethod(_))
        ));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            parse_request("GET / HTTP/1.0\r\nnocolon\r\n\r\n"),
            Err(ParseRequestError::BadHeader(_))
        ));
    }

    #[test]
    fn response_render_includes_status_and_length() {
        let r = Response::ok("hello").render();
        assert!(r.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(r.contains("Content-Length: 5"));
        assert!(r.ends_with("hello"));
    }

    #[test]
    fn unavailable_renders_retry_after() {
        let r = Response::unavailable(30).render();
        assert!(r.starts_with("HTTP/1.0 503 Service Unavailable\r\n"));
        assert!(r.contains("Retry-After: 30\r\n"));
        // Plain responses must not grow the header.
        assert!(!Response::ok("x").render().contains("Retry-After"));
    }

    #[test]
    fn status_reasons() {
        assert_eq!(reason(408), "Request Timeout");
        assert_eq!(reason(504), "Gateway Timeout");
        assert_eq!(Response::status(404).body, "Not Found");
    }
}
