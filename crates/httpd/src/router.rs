//! Declarative request routing.
//!
//! A [`Router`] maps method + path patterns to handlers, with `:param`
//! captures and a configurable fallback — the kind of structure the
//! paper's web server \[8\] grew around its combinators. Matching is pure
//! Rust; the produced [`Handler`] plugs straight
//! into [`start`](crate::server::start).

use std::collections::BTreeMap;
use std::rc::Rc;

use conch_runtime::io::Io;

use crate::http::{Method, Request, Response};
use crate::server::Handler;

/// A handler receiving the request plus the captured `:params`.
pub type RouteHandler = Rc<dyn Fn(Request, BTreeMap<String, String>) -> Io<Response>>;

struct Route {
    method: Method,
    segments: Vec<Segment>,
    handler: RouteHandler,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Literal(String),
    Param(String),
}

fn parse_pattern(pattern: &str) -> Vec<Segment> {
    pattern
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.strip_prefix(':').map_or_else(
                || Segment::Literal(s.to_owned()),
                |p| Segment::Param(p.to_owned()),
            )
        })
        .collect()
}

fn match_path(segments: &[Segment], path: &str) -> Option<BTreeMap<String, String>> {
    let parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    if parts.len() != segments.len() {
        return None;
    }
    let mut params = BTreeMap::new();
    for (seg, part) in segments.iter().zip(parts) {
        match seg {
            Segment::Literal(l) if l == part => {}
            Segment::Literal(_) => return None,
            Segment::Param(name) => {
                params.insert(name.clone(), part.to_owned());
            }
        }
    }
    Some(params)
}

/// A method+pattern table of handlers.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_httpd::http::{Method, Request, Response};
/// use conch_httpd::router::Router;
///
/// let router = Router::new()
///     .get("/users/:id", |_req, params| {
///         Io::pure(Response::ok(format!("user {}", params["id"])))
///     })
///     .into_handler();
///
/// let mut rt = Runtime::new();
/// let resp = rt.run(router(Request::get("/users/42"))).unwrap();
/// assert_eq!(resp.body, "user 42");
/// ```
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
    fallback: Option<RouteHandler>,
}

impl Router {
    /// An empty router (unmatched requests answer 404 unless a fallback
    /// is installed).
    pub fn new() -> Router {
        Router::default()
    }

    /// Adds a route for the given method and pattern (e.g.
    /// `/users/:id/posts`).
    pub fn route(
        mut self,
        method: Method,
        pattern: &str,
        handler: impl Fn(Request, BTreeMap<String, String>) -> Io<Response> + 'static,
    ) -> Router {
        self.routes.push(Route {
            method,
            segments: parse_pattern(pattern),
            handler: Rc::new(handler),
        });
        self
    }

    /// Adds a `GET` route.
    pub fn get(
        self,
        pattern: &str,
        handler: impl Fn(Request, BTreeMap<String, String>) -> Io<Response> + 'static,
    ) -> Router {
        self.route(Method::Get, pattern, handler)
    }

    /// Adds a `POST` route.
    pub fn post(
        self,
        pattern: &str,
        handler: impl Fn(Request, BTreeMap<String, String>) -> Io<Response> + 'static,
    ) -> Router {
        self.route(Method::Post, pattern, handler)
    }

    /// Installs a fallback for unmatched requests (default: 404).
    pub fn fallback(
        mut self,
        handler: impl Fn(Request, BTreeMap<String, String>) -> Io<Response> + 'static,
    ) -> Router {
        self.fallback = Some(Rc::new(handler));
        self
    }

    /// Finalizes into a server [`Handler`].
    pub fn into_handler(self) -> Handler {
        let routes = Rc::new(self.routes);
        let fallback = self.fallback;
        Rc::new(move |req: Request| {
            for route in routes.iter() {
                if route.method == req.method {
                    if let Some(params) = match_path(&route.segments, &req.path) {
                        return (route.handler)(req, params);
                    }
                }
            }
            match &fallback {
                Some(h) => h(req, BTreeMap::new()),
                None => Io::pure(Response::status(404)),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_runtime::prelude::*;

    fn call(router: &Handler, req: Request) -> Response {
        let mut rt = Runtime::new();
        rt.run(router(req)).unwrap()
    }

    #[test]
    fn literal_match() {
        let r = Router::new()
            .get("/health", |_, _| Io::pure(Response::ok("up")))
            .into_handler();
        assert_eq!(call(&r, Request::get("/health")).body, "up");
        assert_eq!(call(&r, Request::get("/other")).status, 404);
    }

    #[test]
    fn param_capture() {
        let r = Router::new()
            .get("/users/:id/posts/:post", |_, p| {
                Io::pure(Response::ok(format!("{}-{}", p["id"], p["post"])))
            })
            .into_handler();
        assert_eq!(call(&r, Request::get("/users/7/posts/9")).body, "7-9");
        assert_eq!(call(&r, Request::get("/users/7")).status, 404);
    }

    #[test]
    fn method_discrimination() {
        let r = Router::new()
            .get("/thing", |_, _| Io::pure(Response::ok("got")))
            .post("/thing", |_, _| Io::pure(Response::ok("posted")))
            .into_handler();
        assert_eq!(call(&r, Request::get("/thing")).body, "got");
        let mut post = Request::get("/thing");
        post.method = Method::Post;
        assert_eq!(call(&r, post).body, "posted");
    }

    #[test]
    fn first_match_wins() {
        let r = Router::new()
            .get("/a/:x", |_, _| Io::pure(Response::ok("param")))
            .get("/a/b", |_, _| Io::pure(Response::ok("literal")))
            .into_handler();
        // Earlier route shadows the later literal.
        assert_eq!(call(&r, Request::get("/a/b")).body, "param");
    }

    #[test]
    fn fallback_replaces_404() {
        let r = Router::new()
            .fallback(|req, _| Io::pure(Response::ok(format!("nothing at {}", req.path))))
            .into_handler();
        assert_eq!(
            call(&r, Request::get("/missing")).body,
            "nothing at /missing"
        );
    }

    #[test]
    fn trailing_slashes_normalized() {
        let r = Router::new()
            .get("/a/b/", |_, _| Io::pure(Response::ok("ok")))
            .into_handler();
        assert_eq!(call(&r, Request::get("/a/b")).status, 200);
        assert_eq!(call(&r, Request::get("/a/b/")).status, 200);
    }

    #[test]
    fn routed_server_end_to_end() {
        use crate::net::Listener;
        use crate::server::{start, ServerConfig};
        let mut rt = Runtime::new();
        let router = Router::new()
            .get("/greet/:name", |_, p| {
                Io::pure(Response::ok(format!("hello {}", p["name"])))
            })
            .into_handler();
        let prog = Listener::bind().and_then(move |l| {
            start(l, router, ServerConfig::default()).and_then(move |_srv| {
                l.connect().and_then(|conn| {
                    conn.send_text(Request::get("/greet/world").render())
                        .then(conn.read_response())
                })
            })
        });
        let resp = rt.run(prog).unwrap();
        assert!(resp.ends_with("hello world"), "got {resp}");
    }
}
