//! Exception storms: bursts of `throwTo KillThread` at worker threads.
//!
//! The §11 fault-tolerance story run in reverse — instead of a
//! supervisor keeping workers alive, an adversary tries to kill them
//! at the worst possible moment, and the server's bracket discipline
//! has to keep the counters conserved anyway. Each potential strike is
//! an injector decision, so in explore mode the engine enumerates every
//! subset of workers × every delivery interleaving.
//!
//! Striking a worker that already finished is deliberately fine:
//! thread ids are generation-tagged, so the `throwTo` is a no-op
//! rather than friendly fire against an unrelated thread that reused
//! the slot.

use conch_combinators::kill_thread;
use conch_httpd::server::Server;
use conch_runtime::ids::ThreadId;
use conch_runtime::io::Io;

use crate::inject::Injector;

/// One storm pass: for every worker the server has ever forked, ask
/// the injector whether to strike it with `KillThread`. Returns how
/// many strikes were delivered (thrown — a strike at an
/// already-finished worker still counts, and is still harmless).
pub fn kill_storm(server: &Server, inj: &Injector) -> Io<i64> {
    let inj = inj.clone();
    server
        .worker_ids()
        .and_then(move |tids| strike_each(inj, tids.into_iter(), 0))
}

fn strike_each(inj: Injector, mut tids: std::vec::IntoIter<ThreadId>, kills: i64) -> Io<i64> {
    match tids.next() {
        None => Io::pure(kills),
        Some(tid) => inj.strike().and_then(move |hit| {
            if hit {
                kill_thread(tid).and_then(move |_| strike_each(inj, tids, kills + 1))
            } else {
                strike_each(inj, tids, kills)
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::prepared_connection;
    use crate::fault::ConnFault;
    use conch_httpd::http::Response;
    use conch_httpd::net::Listener;
    use conch_httpd::server::{handler, start, ServerConfig};
    use conch_runtime::prelude::*;

    #[test]
    fn storm_kills_live_workers_and_counters_conserve() {
        let mut rt = Runtime::new();
        let cfg = ServerConfig {
            read_timeout: 10_000,
            handler_timeout: 10_000,
            ..ServerConfig::default()
        };
        // A stalled connection parks a worker in its read; the storm
        // kills it; the counters must still conserve (killed, not
        // leaked).
        let prog = Listener::bind().and_then(move |l| {
            start(l, handler(|_| Io::pure(Response::ok("hi"))), cfg).and_then(move |server| {
                prepared_connection(ConnFault::Stall, "/x").and_then(move |conn| {
                    l.inject(conn)
                        .then(Io::sleep(100)) // let the worker park in the read
                        .then(kill_storm(&server, &Injector::scripted([1])))
                        .and_then(move |kills| {
                            server
                                .drain()
                                .then(server.shutdown())
                                .then(server.stats.snapshot())
                                .map(move |snap| (kills, snap))
                        })
                })
            })
        });
        let (kills, snap) = rt.run(prog).unwrap();
        assert_eq!(kills, 1);
        assert_eq!(snap.killed, 1, "{snap:?}");
        assert!(snap.conserved(), "{snap:?}");
    }

    #[test]
    fn storm_against_finished_workers_is_a_no_op() {
        let mut rt = Runtime::new();
        let cfg = ServerConfig::default();
        // Serve a request to completion, then storm the (finished)
        // worker: the strike is thrown but lands nowhere.
        let prog = Listener::bind().and_then(move |l| {
            start(l, handler(|_| Io::pure(Response::ok("hi"))), cfg).and_then(move |server| {
                prepared_connection(ConnFault::None, "/x").and_then(move |conn| {
                    l.inject(conn)
                        .then(conn.read_response())
                        .then(server.drain())
                        .then(kill_storm(&server, &Injector::scripted([1])))
                        .and_then(move |kills| {
                            server
                                .shutdown()
                                .then(server.stats.snapshot())
                                .map(move |snap| (kills, snap))
                        })
                })
            })
        });
        let (kills, snap) = rt.run(prog).unwrap();
        assert_eq!(kills, 1, "the strike is thrown even at a finished worker");
        assert_eq!(snap.served, 1);
        assert_eq!(
            snap.killed, 0,
            "a dead slot must absorb the strike: {snap:?}"
        );
        assert!(snap.conserved(), "{snap:?}");
    }

    #[test]
    fn quiet_injector_spares_everyone() {
        let mut rt = Runtime::new();
        let prog = Listener::bind().and_then(move |l| {
            start(
                l,
                handler(|_| Io::pure(Response::ok("hi"))),
                ServerConfig::default(),
            )
            .and_then(move |server| {
                prepared_connection(ConnFault::None, "/x").and_then(move |conn| {
                    l.inject(conn)
                        .then(conn.read_response())
                        .then(server.drain())
                        .then(kill_storm(&server, &Injector::quiet()))
                })
            })
        });
        assert_eq!(rt.run(prog).unwrap(), 0);
    }
}
