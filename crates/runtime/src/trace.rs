//! Observable I/O traces.
//!
//! The paper's outer semantics labels transitions with events: `!c`
//! (writing character `c`), `?c` (reading `c`) and `$d` (time passing).
//! The runtime records the same events so that the conformance tests can
//! check every concrete execution against the trace set admitted by the
//! formal labelled transition system.

/// One observable event of an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoEvent {
    /// `!c` — a character written to standard output.
    Put(char),
    /// `?c` — a character read from standard input.
    Get(char),
    /// `$d` — the virtual clock advanced by `d` microseconds.
    TimeAdvance(u64),
}

impl std::fmt::Display for IoEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoEvent::Put(c) => write!(f, "!{c}"),
            IoEvent::Get(c) => write!(f, "?{c}"),
            IoEvent::TimeAdvance(d) => write!(f, "${d}"),
        }
    }
}

/// Renders a trace as a compact string, e.g. `"!h!i$5?x"`.
pub fn render_trace(events: &[IoEvent]) -> String {
    events.iter().map(|e| e.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(IoEvent::Put('a').to_string(), "!a");
        assert_eq!(IoEvent::Get('b').to_string(), "?b");
        assert_eq!(IoEvent::TimeAdvance(10).to_string(), "$10");
    }

    #[test]
    fn render_concatenates() {
        let t = [IoEvent::Put('h'), IoEvent::Put('i'), IoEvent::TimeAdvance(5)];
        assert_eq!(render_trace(&t), "!h!i$5");
    }
}
