//! Failure certificates: serialized schedules.
//!
//! A [`Schedule`] is the complete record of the nondeterministic choices
//! of one execution: which thread was picked at every *branch point*
//! (a step boundary where more than one thread could run) and whether
//! each pending asynchronous exception was delivered at each delivery
//! opportunity. Everything else a run does is deterministic, so a
//! schedule replays an execution exactly — in a different `Runtime`, a
//! different process, or a bug report.
//!
//! The text form is compact and line-safe: choices separated by `.`,
//! thread choices as `t<N>`, delivery choices as `d+` (deliver now)
//! or `d-` (defer), and oracle-arm choices
//! ([`Io::choose`](conch_runtime::io::Io::choose), the fault plane's
//! branch points) as `f<N>`, e.g. `t1.t0.d-.f2.t1.d+`.

use std::fmt;
use std::str::FromStr;

/// One nondeterministic choice of an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Choice {
    /// At a branch point, run the thread with this id next.
    Thread(u64),
    /// At a delivery opportunity: deliver the pending exception now
    /// (`true`) or defer it past the next step (`false`).
    Deliver(bool),
    /// At an [`Io::choose`](conch_runtime::io::Io::choose) oracle: take
    /// this arm. Arm 0 is the "nothing unusual happens" convention of
    /// the fault plane.
    Arm(u8),
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Choice::Thread(t) => write!(f, "t{t}"),
            Choice::Deliver(true) => f.write_str("d+"),
            Choice::Deliver(false) => f.write_str("d-"),
            Choice::Arm(a) => write!(f, "f{a}"),
        }
    }
}

/// A replayable schedule: the serialized form of an execution's choices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// The choices, in the order their branch points occur.
    pub choices: Vec<Choice>,
}

impl Schedule {
    /// An empty schedule (replays as "always the default choice").
    pub fn new() -> Self {
        Schedule::default()
    }

    /// The number of recorded choices.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether no choices are recorded.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }
}

impl From<Vec<Choice>> for Schedule {
    fn from(choices: Vec<Choice>) -> Self {
        Schedule { choices }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.choices.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Error parsing a serialized [`Schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScheduleError {
    /// The token that failed to parse.
    pub token: String,
}

impl fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid schedule token {:?}", self.token)
    }
}

impl std::error::Error for ParseScheduleError {}

impl FromStr for Schedule {
    type Err = ParseScheduleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Schedule::new());
        }
        let mut choices = Vec::new();
        for token in s.split('.') {
            let choice = match token {
                "d+" => Choice::Deliver(true),
                "d-" => Choice::Deliver(false),
                _ => {
                    let thread = token.strip_prefix('t').and_then(|n| n.parse::<u64>().ok());
                    let arm = token.strip_prefix('f').and_then(|n| n.parse::<u8>().ok());
                    match (thread, arm) {
                        (Some(t), _) => Choice::Thread(t),
                        (None, Some(a)) => Choice::Arm(a),
                        (None, None) => {
                            return Err(ParseScheduleError {
                                token: token.to_owned(),
                            })
                        }
                    }
                }
            };
            choices.push(choice);
        }
        Ok(Schedule { choices })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let s = Schedule::from(vec![
            Choice::Thread(1),
            Choice::Deliver(false),
            Choice::Arm(2),
            Choice::Thread(0),
            Choice::Deliver(true),
        ]);
        let text = s.to_string();
        assert_eq!(text, "t1.d-.f2.t0.d+");
        assert_eq!(text.parse::<Schedule>().unwrap(), s);
    }

    #[test]
    fn empty_schedule_round_trips() {
        assert_eq!("".parse::<Schedule>().unwrap(), Schedule::new());
        assert_eq!(Schedule::new().to_string(), "");
    }

    #[test]
    fn bad_tokens_are_rejected() {
        assert!("t1.x9".parse::<Schedule>().is_err());
        assert!("d?".parse::<Schedule>().is_err());
    }
}
