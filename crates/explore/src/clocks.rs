//! Vector-clock happens-before tracking and race detection over one
//! executed run — the analysis half of dynamic partial-order reduction
//! (Flanagan & Godefroid, POPL 2005), adapted to the runtime's
//! [`StepFootprint`] dependence relation.
//!
//! The driver logs every executed *non-invisible* step as an
//! [`ExecEvent`]: thread-local steps commute with everything and can
//! never participate in a race, so they are skipped at the source, and
//! delivery transitions are never logged (the nondeterminism of where a
//! pending exception lands is carried entirely by the explicit
//! `Choice::Deliver` branch points, which the DPOR engine branches both
//! ways unconditionally).
//!
//! Happens-before is the transitive closure of
//!
//! * **program order** — consecutive steps of one thread,
//! * **dependence** — logged steps that may not commute
//!   ([`events_dependent`]), and
//! * **creation** — a forked thread's first step follows its parent's
//!   `fork` ([`Birth`]).
//!
//! # Why not just [`StepFootprint::dependent`]?
//!
//! The footprint relation is the right one for sleep sets, where a
//! conservative answer only costs pruning. For DPOR the cost structure
//! is inverted: every spurious dependence is a spurious race, every
//! spurious race installs a backtrack flag, and every flag spawns a
//! run — conservatism *multiplies* the schedule count instead of
//! shaving the reduction. So the analyzer uses a sharper, tid-aware
//! relation ([`events_dependent`]) that exploits what the log knows and
//! the footprint lattice cannot express:
//!
//! * `Throw(t)` only touches `t`'s pending queue: it is dependent on
//!   every step *of `t`* and on other throws at `t`, but commutes with
//!   unrelated threads. (A throw whose target was not runnable is
//!   already coarsened to `Effect` at the source — the eager
//!   (Interrupt) rule may then cancel a wait on an arbitrary resource.)
//! * `Terminal` of a non-main thread ends that thread and wakes its
//!   sync-throw notifiers: dependent on the steps of any thread that
//!   ever threw at it, and on nothing else. The *main* thread's
//!   terminal stops the world — dependent on everything.
//! * Everything else falls back to the same-resource conflicts of the
//!   footprint relation.
//!
//! Two logged steps in different threads form a **race** when they are
//! dependent but *not* happens-before ordered: executing them in the
//! other order is a genuinely different behaviour that some schedule
//! must cover. For each race the analysis reports the branch point at
//! which the earlier step was chosen (when it was chosen at one — a
//! forced step has no alternatives, and classic DPOR then relies on the
//! race re-appearing at an earlier, branchable point of some other
//! run), so the search can install a backtrack entry there instead of
//! branching on every enabled alternative everywhere.

use conch_runtime::decide::StepFootprint;

/// One logged step of an executed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ExecEvent {
    /// The thread that took the step.
    pub tid: u64,
    /// The step's footprint.
    pub fp: StepFootprint,
    /// Index into the run's branch-point record when this step was
    /// chosen at a branch point; `None` for forced steps (sole runnable
    /// thread, preemption-bound or depth-budget forcing).
    pub point: Option<u32>,
    /// For a `throwTo` step only: the target was not runnable when the
    /// throw executed. The eager (Interrupt) rule may then cancel the
    /// target's wait — an effect on whatever resource it was blocked
    /// on, which the analyzer recovers from the target's last logged
    /// event (the blocking operation itself, since blocking operations
    /// are never local).
    pub blocked_target: bool,
}

/// A thread observed for the first time, with the event that created it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Birth {
    pub tid: u64,
    /// Index into the event log of the parent's `fork` step, when the
    /// step executed immediately before the thread first appeared was a
    /// fork. `None` (no creation edge, which only *over*-approximates
    /// concurrency and so over-explores, never under-explores) otherwise.
    pub parent_event: Option<u32>,
}

/// A reversible race: the branch point of the earlier step, and the
/// thread whose later dependent step should be tried there instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RaceFlag {
    /// Index into the run's branch-point record.
    pub point: u32,
    /// The thread of the later step of the race.
    pub later_tid: u64,
    /// Flanagan–Godefroid's E set: threads whose *first* event after
    /// the branch point already happens-before the later step of the
    /// race (always includes `later_tid` itself). When `later_tid` is
    /// not enabled at the branch point, forcing any one enabled witness
    /// makes progress toward the reversal — a far narrower fallback
    /// than flagging every untried sibling.
    pub witnesses: Vec<u64>,
}

/// The result of analyzing one run.
#[derive(Debug, Default, PartialEq, Eq)]
pub(crate) struct RaceAnalysis {
    /// Backtrack requests, in log order (deduplicated).
    pub flags: Vec<RaceFlag>,
    /// Total dependent-but-unordered pairs found, including those at
    /// forced (unbranchable) steps — the `races_detected` telemetry.
    pub races: u64,
}

/// A dense vector clock: one component per thread index.
type Clock = Vec<u32>;

fn join(into: &mut Clock, other: &Clock) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (a, b) in into.iter_mut().zip(other) {
        *a = (*a).max(*b);
    }
}

/// The DPOR dependence relation over logged events of *different*
/// threads (see the module docs for the case-by-case justification).
/// Must over-approximate true non-commutation, or reversals get lost;
/// must stay sharp, or the search degenerates toward full enumeration.
///
/// `main` is the main thread's id (its terminal stops the world);
/// `a_res`/`b_res` name the wait resource a blocked-target throw may
/// cancel (see [`ExecEvent::blocked_target`]).
fn events_dependent(
    a: &ExecEvent,
    b: &ExecEvent,
    a_res: Option<StepFootprint>,
    b_res: Option<StepFootprint>,
    main: u64,
) -> bool {
    use StepFootprint::*;
    debug_assert_ne!(a.tid, b.tid);
    if a.fp == Effect || b.fp == Effect {
        return true;
    }
    if let Throw(t) = a.fp {
        if t.index() == b.tid || matches!(b.fp, Throw(u) if u.index() == t.index()) {
            return true;
        }
    }
    if let Throw(t) = b.fp {
        if t.index() == a.tid {
            return true;
        }
    }
    // A throw at a blocked target may cancel the target's wait on
    // `res`: it conflicts with any step touching that resource.
    if let Some(res) = a_res {
        if !res.independent(b.fp) {
            return true;
        }
    }
    if let Some(res) = b_res {
        if !res.independent(a.fp) {
            return true;
        }
    }
    // The main thread's terminal stops the world: whether another step
    // lands before or after it is observable. A non-main terminal is
    // dependent only with its own thread's history and with throws at
    // it — both covered by the rules above: a thrower's post-wake
    // events are physically ordered after the terminal that woke it,
    // and its pre-throw events conflict (if at all) through their own
    // resources.
    if (a.fp == Terminal && a.tid == main) || (b.fp == Terminal && b.tid == main) {
        return true;
    }
    match (a.fp, b.fp) {
        (Terminal, _) | (_, Terminal) => false,
        (Throw(_), _) | (_, Throw(_)) => false,
        // Oracle steps are never logged (their nondeterminism lives in
        // the explicit arm branch point), but treat them as confined to
        // their thread should one ever appear.
        (Local | Mask | Raise | Oracle, _) | (_, Local | Mask | Raise | Oracle) => false,
        (MVar(x), MVar(y)) => x == y,
        (Alloc, Alloc) | (Console, Console) | (Time, Time) | (Fork, Fork) => true,
        _ => false,
    }
}

/// Detect every race of one executed run.
///
/// This is a deterministic function of the log alone — the cornerstone
/// of the parallel determinism argument in `DESIGN.md`: two workers
/// replaying the same choice prefix produce the same log, hence the
/// same flags, for any interleaving of workers.
pub(crate) fn analyze(events: &[ExecEvent], births: &[Birth]) -> RaceAnalysis {
    let mut analysis = RaceAnalysis::default();
    if events.len() < 2 {
        return analysis;
    }

    // The main thread is the first ever observed; its terminal stops
    // the world. Collect (target, thrower) pairs for the terminal-wake
    // rule of `events_dependent`.
    let main = births.first().map(|b| b.tid).unwrap_or(0);

    // The wait resource a blocked-target throw may cancel: the target's
    // last logged event before the throw is the blocking operation
    // itself (blocking operations are never local). A dead target
    // (Terminal) makes the throw a no-op — no extra dependence; an
    // unnameable wait falls back to Effect (dependent on everything).
    let wait_res: Vec<Option<StepFootprint>> = events
        .iter()
        .enumerate()
        .map(|(n, e)| {
            if !e.blocked_target {
                return None;
            }
            let StepFootprint::Throw(t) = e.fp else {
                return None;
            };
            let target = t.index();
            match events[..n].iter().rev().find(|p| p.tid == target) {
                Some(p) => match p.fp {
                    StepFootprint::Terminal => None,
                    fp
                    @ (StepFootprint::MVar(_) | StepFootprint::Console | StepFootprint::Time) => {
                        Some(fp)
                    }
                    _ => Some(StepFootprint::Effect),
                },
                None => Some(StepFootprint::Effect),
            }
        })
        .collect();

    // Dense thread indices, in order of first appearance in the log.
    let mut tids: Vec<u64> = Vec::new();
    let thread_index = |tids: &mut Vec<u64>, tid: u64| -> usize {
        match tids.iter().position(|&t| t == tid) {
            Some(i) => i,
            None => {
                tids.push(tid);
                tids.len() - 1
            }
        }
    };

    // Per-event post clocks, the running per-thread clocks, and each
    // thread's executed-event count (its own clock component).
    let mut post: Vec<Clock> = Vec::with_capacity(events.len());
    let mut thread_clock: Vec<Clock> = Vec::new();
    let mut thread_seq: Vec<u32> = Vec::new();
    // Per-event sequence number within its thread (1-based).
    let mut seq: Vec<u32> = Vec::with_capacity(events.len());
    // Races at branchable points, as (earlier, later) event indices;
    // flags are built after the pass, once every post clock is final.
    let mut race_pairs: Vec<(usize, usize)> = Vec::new();

    for (n, e) in events.iter().enumerate() {
        let t = thread_index(&mut tids, e.tid);
        if t == thread_clock.len() {
            // First event of this thread: inherit the creating fork's
            // clock, if known.
            let mut c = Clock::new();
            if let Some(b) = births.iter().find(|b| b.tid == e.tid) {
                if let Some(p) = b.parent_event {
                    if let Some(pc) = post.get(p as usize) {
                        c = pc.clone();
                    }
                }
            }
            thread_clock.push(c);
            thread_seq.push(0);
        }

        // Walk earlier events newest-first, folding dependent events'
        // clocks into an accumulator as we go: event `i` races with `n`
        // exactly when it is dependent and *not yet* covered by the
        // accumulated clock — i.e. no chain of later dependent events
        // (or program order) already orders it before `n`.
        let mut acc = thread_clock[t].clone();
        for i in (0..n).rev() {
            let ei = &events[i];
            if ei.tid == e.tid || !events_dependent(ei, e, wait_res[i], wait_res[n], main) {
                continue;
            }
            let ti = thread_index(&mut tids, ei.tid);
            if acc.get(ti).copied().unwrap_or(0) < seq[i] {
                analysis.races += 1;
                if ei.point.is_some() {
                    race_pairs.push((i, n));
                }
            }
            join(&mut acc, &post[i]);
        }

        // Commit: bump this thread's own component and store the post
        // clock.
        thread_seq[t] += 1;
        if acc.len() <= t {
            acc.resize(t + 1, 0);
        }
        acc[t] = thread_seq[t];
        seq.push(thread_seq[t]);
        thread_clock[t] = acc.clone();
        post.push(acc);
    }

    // Build the flags, deduplicated on (point, later_tid), with each
    // flag's witness set: the threads whose first event strictly after
    // the earlier step is happens-before the later step (computed from
    // the now-final post clocks; the later step always witnesses
    // itself).
    for (i, n) in race_pairs {
        let point = events[i]
            .point
            .expect("race pair recorded at a branch point");
        let later_tid = events[n].tid;
        if analysis
            .flags
            .iter()
            .any(|f| f.point == point && f.later_tid == later_tid)
        {
            continue;
        }
        let mut witnesses: Vec<u64> = Vec::new();
        let mut seen: Vec<u64> = Vec::new();
        for (j, ej) in events.iter().enumerate().take(n + 1).skip(i + 1) {
            if seen.contains(&ej.tid) {
                continue;
            }
            seen.push(ej.tid);
            let tj = tids
                .iter()
                .position(|&t| t == ej.tid)
                .expect("every logged thread has an index");
            if post[n].get(tj).copied().unwrap_or(0) >= seq[j] {
                witnesses.push(ej.tid);
            }
        }
        analysis.flags.push(RaceFlag {
            point,
            later_tid,
            witnesses,
        });
    }
    analysis
}

/// A sparse vector clock: `(thread index, count)` pairs, ascending by
/// index, zero components absent. A DPOR run only ever orders the few
/// threads that actually communicated on its path, so sparse clocks
/// stay tiny and joins touch only the communicating entries, where the
/// legacy analyzer's dense `Vec<u32>` clones scale with the total
/// thread count.
#[derive(Debug, Clone, Default, PartialEq)]
struct SparseClock {
    entries: Vec<(u32, u32)>,
}

impl SparseClock {
    fn get(&self, t: u32) -> u32 {
        match self.entries.binary_search_by_key(&t, |&(i, _)| i) {
            Ok(k) => self.entries[k].1,
            Err(_) => 0,
        }
    }

    fn set(&mut self, t: u32, v: u32) {
        match self.entries.binary_search_by_key(&t, |&(i, _)| i) {
            Ok(k) => self.entries[k].1 = v,
            Err(k) => self.entries.insert(k, (t, v)),
        }
    }

    /// Pointwise maximum (a sorted merge).
    fn join(&mut self, other: &SparseClock) {
        if other.entries.is_empty() {
            return;
        }
        if self.entries.is_empty() {
            self.entries.clone_from(&other.entries);
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (a, b) = (&self.entries, &other.entries);
        let (mut i, mut j) = (0, 0);
        loop {
            match (a.get(i), b.get(j)) {
                (Some(&(ta, va)), Some(&(tb, vb))) => {
                    if ta == tb {
                        merged.push((ta, va.max(vb)));
                        i += 1;
                        j += 1;
                    } else if ta < tb {
                        merged.push((ta, va));
                        i += 1;
                    } else {
                        merged.push((tb, vb));
                        j += 1;
                    }
                }
                (Some(&e), None) => {
                    merged.push(e);
                    i += 1;
                }
                (None, Some(&e)) => {
                    merged.push(e);
                    j += 1;
                }
                (None, None) => break,
            }
        }
        self.entries = merged;
    }
}

/// Interned footprint class of a resource-bearing footprint: a small
/// integer key for the per-object candidate index, so list lookup and
/// bucketing compare integers instead of matching footprint structs.
/// Footprints without a same-resource conflict class (`Local`, `Mask`,
/// `Raise`, `Oracle`, `Throw`, `Terminal`, `Effect`) have none — their
/// dependence arcs run through the dedicated throw/terminal/always
/// lists instead.
fn fp_class(fp: StepFootprint) -> Option<u64> {
    use StepFootprint::*;
    match fp {
        Alloc => Some(0),
        Console => Some(1),
        Time => Some(2),
        Fork => Some(3),
        MVar(x) => Some(4 + x.index()),
        _ => None,
    }
}

fn truncate_list(list: &mut Vec<u32>, limit: u32) {
    while list.last().is_some_and(|&n| n >= limit) {
        list.pop();
    }
}

/// The incremental race analyzer: vector-clock state for the *current*
/// event log, updated per executed step and rolled back to the common
/// prefix when the search backtracks, instead of recomputed from
/// scratch on every run ([`analyze`], kept as the
/// `legacy_race_analysis` reference path).
///
/// # Why rollback is sound
///
/// Everything stored here about events `0..k` is a pure function of
/// those events (plus the births of the threads appearing in them,
/// which the driver fixes before a thread's first logged step) — the
/// same guarantee the legacy analyzer's determinism rests on. Two runs
/// sharing an event-log prefix therefore share every per-event
/// artifact over it: post clocks, sequence numbers, race pairs, and
/// the candidate indices. So on a new run the state is truncated to
/// the longest common prefix (each event saving just enough — its
/// thread's previous clock — to undo itself) and only the new suffix
/// is analyzed.
///
/// # Why the candidate indices lose no race
///
/// For a new event `e` the analyzer walks candidate earlier events
/// newest-first exactly like the legacy full scan, but gathers the
/// candidates from per-object lists instead of the whole prefix: the
/// same-resource list of `e`'s footprint class, the throws aimed at
/// `e`'s thread, (for a throw) the target's events, its other throwers
/// and all blocked-target throws, (for a terminal) the blocked-target
/// throws, (for a blocked-target throw) its wait resource's list plus
/// all throws and terminals, and the `always` list (`Effect` steps,
/// the main thread's terminal, unnameable waits) — a transcription of
/// [`events_dependent`], case by case, into list membership, checked
/// by the unit tests against the exhaustive scan. The union is a
/// *superset* of every possibly-dependent event; each candidate is
/// then re-checked with `events_dependent` itself, so the dependent
/// subsequence — and with it the accumulator walk, the race count,
/// the flags and their witness sets — is bit-identical to the legacy
/// analyzer's.
pub(crate) struct RaceState {
    /// Ignore all incremental state and run [`analyze`] per run.
    legacy: bool,
    events: Vec<ExecEvent>,
    wait_res: Vec<Option<StepFootprint>>,
    /// Dense thread indices, in order of first appearance.
    tids: Vec<u64>,
    /// Whether event `n` was its thread's first.
    introduced: Vec<bool>,
    post: Vec<SparseClock>,
    seq: Vec<u32>,
    /// The thread clock of event `n`'s thread just before `n` — the
    /// undo record rollback restores.
    prev_clock: Vec<SparseClock>,
    thread_clock: Vec<SparseClock>,
    thread_seq: Vec<u32>,
    /// Cumulative dependent-but-unordered pair count through event `n`
    /// — the run's `races` telemetry is the last entry.
    cum_races: Vec<u64>,
    /// Branchable race pairs `(earlier, later)`, later ascending.
    race_pairs: Vec<(u32, u32)>,
    // Candidate indices: ascending event positions, truncated on
    // rollback.
    by_thread: Vec<Vec<u32>>,
    res_lists: std::collections::HashMap<u64, Vec<u32>>,
    throws_at: std::collections::HashMap<u64, Vec<u32>>,
    throws_all: Vec<u32>,
    terminals: Vec<u32>,
    blocked: Vec<u32>,
    always: Vec<u32>,
    scratch: Vec<u32>,
}

impl RaceState {
    pub fn new(legacy: bool) -> Self {
        RaceState {
            legacy,
            events: Vec::new(),
            wait_res: Vec::new(),
            tids: Vec::new(),
            introduced: Vec::new(),
            post: Vec::new(),
            seq: Vec::new(),
            prev_clock: Vec::new(),
            thread_clock: Vec::new(),
            thread_seq: Vec::new(),
            cum_races: Vec::new(),
            race_pairs: Vec::new(),
            by_thread: Vec::new(),
            res_lists: std::collections::HashMap::new(),
            throws_at: std::collections::HashMap::new(),
            throws_all: Vec::new(),
            terminals: Vec::new(),
            blocked: Vec::new(),
            always: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Analyze one run's event log, reusing the shared-prefix state of
    /// the previous call. Returns exactly what [`analyze`] would.
    pub fn analyze(&mut self, events: &[ExecEvent], births: &[Birth]) -> RaceAnalysis {
        if self.legacy {
            return analyze(events, births);
        }
        let keep = self
            .events
            .iter()
            .zip(events)
            .take_while(|(a, b)| a == b)
            .count();
        self.rollback(keep);
        let main = births.first().map(|b| b.tid).unwrap_or(0);
        for e in &events[keep..] {
            self.push_event(*e, births, main);
        }
        self.build_analysis()
    }

    /// Truncate the state to the first `keep` events, undoing each
    /// later event newest-first.
    fn rollback(&mut self, keep: usize) {
        for n in (keep..self.events.len()).rev() {
            if self.introduced[n] {
                // Threads are introduced in index order, so undoing
                // events newest-first pops them last-introduced-first.
                self.tids.pop();
                self.thread_clock.pop();
                self.thread_seq.pop();
                self.by_thread.pop();
            } else {
                let tid = self.events[n].tid;
                let t = self
                    .tids
                    .iter()
                    .position(|&x| x == tid)
                    .expect("rolled-back event's thread is indexed");
                self.thread_seq[t] -= 1;
                self.thread_clock[t] = std::mem::take(&mut self.prev_clock[n]);
            }
        }
        self.events.truncate(keep);
        self.wait_res.truncate(keep);
        self.introduced.truncate(keep);
        self.post.truncate(keep);
        self.seq.truncate(keep);
        self.prev_clock.truncate(keep);
        self.cum_races.truncate(keep);
        let limit = keep as u32;
        while self.race_pairs.last().is_some_and(|&(_, n)| n >= limit) {
            self.race_pairs.pop();
        }
        for list in self.by_thread.iter_mut() {
            truncate_list(list, limit);
        }
        for list in self.res_lists.values_mut() {
            truncate_list(list, limit);
        }
        for list in self.throws_at.values_mut() {
            truncate_list(list, limit);
        }
        truncate_list(&mut self.throws_all, limit);
        truncate_list(&mut self.terminals, limit);
        truncate_list(&mut self.blocked, limit);
        truncate_list(&mut self.always, limit);
    }

    /// The wait resource a blocked-target throw may cancel — the
    /// legacy analyzer's backwards log scan, answered from the
    /// per-thread index instead.
    fn wait_res_of(&self, e: &ExecEvent) -> Option<StepFootprint> {
        if !e.blocked_target {
            return None;
        }
        let StepFootprint::Throw(t) = e.fp else {
            return None;
        };
        let target = t.index();
        let last = self
            .tids
            .iter()
            .position(|&x| x == target)
            .and_then(|t2| self.by_thread[t2].last().copied());
        match last {
            Some(p) => match self.events[p as usize].fp {
                StepFootprint::Terminal => None,
                fp @ (StepFootprint::MVar(_) | StepFootprint::Console | StepFootprint::Time) => {
                    Some(fp)
                }
                _ => Some(StepFootprint::Effect),
            },
            None => Some(StepFootprint::Effect),
        }
    }

    /// Extend the state by one event: gather the candidate earlier
    /// events from the per-object indices, run the newest-first
    /// accumulator walk over them, and commit the event's clocks and
    /// index entries.
    fn push_event(&mut self, e: ExecEvent, births: &[Birth], main: u64) {
        let n = self.events.len();
        let w = self.wait_res_of(&e);
        let (t, introduced) = match self.tids.iter().position(|&x| x == e.tid) {
            Some(t) => (t, false),
            None => {
                // First event of this thread: inherit the creating
                // fork's clock, if known.
                let mut c = SparseClock::default();
                if let Some(b) = births.iter().find(|b| b.tid == e.tid) {
                    if let Some(p) = b.parent_event {
                        if let Some(pc) = self.post.get(p as usize) {
                            c = pc.clone();
                        }
                    }
                }
                self.tids.push(e.tid);
                self.thread_clock.push(c);
                self.thread_seq.push(0);
                self.by_thread.push(Vec::new());
                (self.tids.len() - 1, true)
            }
        };

        // Candidates, descending and deduped. An `Effect` step, the
        // main thread's terminal, and an unnameable cancelled wait are
        // dependent with everything — fall back to the full prefix.
        let full_walk = e.fp == StepFootprint::Effect
            || (e.fp == StepFootprint::Terminal && e.tid == main)
            || w == Some(StepFootprint::Effect);
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        if full_walk {
            scratch.extend((0..n as u32).rev());
        } else {
            scratch.extend_from_slice(&self.always);
            if let Some(list) = self.throws_at.get(&e.tid) {
                scratch.extend_from_slice(list);
            }
            if let Some(class) = fp_class(e.fp) {
                if let Some(list) = self.res_lists.get(&class) {
                    scratch.extend_from_slice(list);
                }
            }
            if let StepFootprint::Throw(target) = e.fp {
                let target = target.index();
                if let Some(t2) = self.tids.iter().position(|&x| x == target) {
                    scratch.extend_from_slice(&self.by_thread[t2]);
                }
                if let Some(list) = self.throws_at.get(&target) {
                    scratch.extend_from_slice(list);
                }
                scratch.extend_from_slice(&self.blocked);
            }
            if e.fp == StepFootprint::Terminal {
                scratch.extend_from_slice(&self.blocked);
            }
            if let Some(res) = w {
                // `res != Effect` here (that took the full-walk path):
                // the cancelled wait conflicts with its resource's
                // steps and with every throw and terminal.
                if let Some(class) = fp_class(res) {
                    if let Some(list) = self.res_lists.get(&class) {
                        scratch.extend_from_slice(list);
                    }
                }
                scratch.extend_from_slice(&self.throws_all);
                scratch.extend_from_slice(&self.terminals);
            }
            scratch.sort_unstable_by(|a, b| b.cmp(a));
            scratch.dedup();
        }

        // The accumulator walk of `analyze`, restricted to the
        // candidates: the skipped events are provably independent, so
        // the dependent subsequence — and the accumulator's evolution
        // along it — is identical to the full scan's.
        let mut acc = self.thread_clock[t].clone();
        let mut new_races = 0u64;
        for &iu in &scratch {
            let i = iu as usize;
            let ei = &self.events[i];
            if ei.tid == e.tid || !events_dependent(ei, &e, self.wait_res[i], w, main) {
                continue;
            }
            let ti = self
                .tids
                .iter()
                .position(|&x| x == ei.tid)
                .expect("earlier event's thread is indexed") as u32;
            if acc.get(ti) < self.seq[i] {
                new_races += 1;
                if ei.point.is_some() {
                    self.race_pairs.push((iu, n as u32));
                }
            }
            acc.join(&self.post[i]);
        }
        self.scratch = scratch;

        // Commit clocks and undo record.
        self.thread_seq[t] += 1;
        let sq = self.thread_seq[t];
        acc.set(t as u32, sq);
        let prev = std::mem::replace(&mut self.thread_clock[t], acc.clone());
        self.prev_clock.push(if introduced {
            SparseClock::default()
        } else {
            prev
        });
        self.post.push(acc);
        self.seq.push(sq);
        self.introduced.push(introduced);
        let total = self.cum_races.last().copied().unwrap_or(0) + new_races;
        self.cum_races.push(total);

        // Commit index entries.
        self.by_thread[t].push(n as u32);
        if let Some(class) = fp_class(e.fp) {
            self.res_lists.entry(class).or_default().push(n as u32);
        }
        match e.fp {
            StepFootprint::Throw(target) => {
                self.throws_at
                    .entry(target.index())
                    .or_default()
                    .push(n as u32);
                self.throws_all.push(n as u32);
            }
            StepFootprint::Terminal => {
                self.terminals.push(n as u32);
                if e.tid == main {
                    self.always.push(n as u32);
                }
            }
            StepFootprint::Effect => self.always.push(n as u32),
            _ => {}
        }
        match w {
            Some(StepFootprint::Effect) => {
                self.always.push(n as u32);
                self.blocked.push(n as u32);
            }
            Some(res) => {
                self.blocked.push(n as u32);
                if let Some(class) = fp_class(res) {
                    self.res_lists.entry(class).or_default().push(n as u32);
                }
            }
            None => {}
        }
        self.events.push(e);
        self.wait_res.push(w);
    }

    /// The run's [`RaceAnalysis`]: total race pairs over the whole
    /// current log, and the flags rebuilt from the cached race pairs in
    /// first-found order with witnesses read off the (immutable) post
    /// clocks — byte-for-byte what [`analyze`] builds.
    fn build_analysis(&self) -> RaceAnalysis {
        let mut analysis = RaceAnalysis {
            flags: Vec::new(),
            races: self.cum_races.last().copied().unwrap_or(0),
        };
        for &(iu, nu) in &self.race_pairs {
            let (i, n) = (iu as usize, nu as usize);
            let point = self.events[i]
                .point
                .expect("race pair recorded at a branch point");
            let later_tid = self.events[n].tid;
            if analysis
                .flags
                .iter()
                .any(|f| f.point == point && f.later_tid == later_tid)
            {
                continue;
            }
            let mut witnesses: Vec<u64> = Vec::new();
            let mut seen: Vec<u64> = Vec::new();
            for (j, ej) in self.events.iter().enumerate().take(n + 1).skip(i + 1) {
                if seen.contains(&ej.tid) {
                    continue;
                }
                seen.push(ej.tid);
                let tj = self
                    .tids
                    .iter()
                    .position(|&x| x == ej.tid)
                    .expect("every logged thread has an index") as u32;
                if self.post[n].get(tj) >= self.seq[j] {
                    witnesses.push(ej.tid);
                }
            }
            analysis.flags.push(RaceFlag {
                point,
                later_tid,
                witnesses,
            });
        }
        analysis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_runtime::ids::MVarId;

    fn ev(tid: u64, fp: StepFootprint, point: Option<u32>) -> ExecEvent {
        ExecEvent {
            tid,
            fp,
            point,
            blocked_target: false,
        }
    }

    fn has_flag(a: &RaceAnalysis, point: u32, later_tid: u64) -> bool {
        a.flags
            .iter()
            .any(|f| f.point == point && f.later_tid == later_tid)
    }

    #[test]
    fn two_console_steps_race() {
        let log = [
            ev(0, StepFootprint::Console, Some(0)),
            ev(1, StepFootprint::Console, None),
        ];
        let a = analyze(&log, &[]);
        assert_eq!(a.races, 1);
        assert_eq!(a.flags.len(), 1);
        assert!(has_flag(&a, 0, 1));
        // The later step always witnesses itself.
        assert_eq!(a.flags[0].witnesses, vec![1]);
    }

    #[test]
    fn program_order_is_not_a_race() {
        let log = [
            ev(0, StepFootprint::Console, Some(0)),
            ev(0, StepFootprint::Console, Some(1)),
        ];
        let a = analyze(&log, &[]);
        assert_eq!(a.races, 0);
        assert!(a.flags.is_empty());
    }

    #[test]
    fn independent_steps_do_not_race() {
        let log = [
            ev(0, StepFootprint::MVar(MVarId::from_index(1)), Some(0)),
            ev(1, StepFootprint::MVar(MVarId::from_index(2)), None),
        ];
        let a = analyze(&log, &[]);
        assert_eq!(a.races, 0);
    }

    #[test]
    fn dependence_chains_order_distant_events() {
        // t0:m1 → t1:m1 (dependent, adjacent) → t1:m2 → t2:m2. The
        // pair (t0:m1, t1:m1) races and (t1:m2, t2:m2) races, but
        // t0:m1 does NOT race with anything in t2: it is ordered before
        // t2:m2 only through... actually t0:m1 and t2:m2 are
        // independent (different MVars), so only the two adjacent
        // races exist.
        let log = [
            ev(0, StepFootprint::MVar(MVarId::from_index(1)), Some(0)),
            ev(1, StepFootprint::MVar(MVarId::from_index(1)), Some(1)),
            ev(1, StepFootprint::MVar(MVarId::from_index(2)), None),
            ev(2, StepFootprint::MVar(MVarId::from_index(2)), Some(2)),
        ];
        let a = analyze(&log, &[]);
        assert_eq!(a.races, 2);
        // Only the first race yields a flag: the earlier event of the
        // second race (t1:m2) was not taken at a branchable point
        // (`point = None`), so there is nothing to reverse there.
        assert_eq!(a.flags.len(), 1);
        assert!(has_flag(&a, 0, 1));
    }

    #[test]
    fn happens_before_via_intermediate_suppresses_race() {
        // t0:console, then t1:effect (dependent on both sides), then
        // t2:console. t0's console is ordered before t2's console via
        // the effect, so only two races are reported: (t0, t1) and
        // (t1, t2).
        let log = [
            ev(0, StepFootprint::Console, Some(0)),
            ev(1, StepFootprint::Effect, Some(1)),
            ev(2, StepFootprint::Console, Some(2)),
        ];
        let a = analyze(&log, &[]);
        assert_eq!(a.races, 2);
        assert!(has_flag(&a, 0, 1));
        assert!(has_flag(&a, 1, 2));
    }

    #[test]
    fn fork_creates_happens_before() {
        // Parent forks (event 0), child prints (event 1), parent prints
        // (event 2). The child's console step inherits the fork's clock,
        // but fork→console is independent... use Effect to force
        // dependence checking: parent's fork then child console and
        // parent console race with each other, but NOT with the fork
        // (fork is independent of console). With the birth edge the
        // child's console still races with the parent's later console.
        let log = [
            ev(0, StepFootprint::Fork, Some(0)),
            ev(1, StepFootprint::Console, Some(1)),
            ev(0, StepFootprint::Console, None),
        ];
        let births = [Birth {
            tid: 1,
            parent_event: Some(0),
        }];
        let a = analyze(&log, &births);
        // console(child) vs console(parent): dependent, concurrent.
        assert_eq!(a.races, 1);
        assert_eq!(a.flags.len(), 1);
        assert!(has_flag(&a, 1, 0));
    }

    #[test]
    fn birth_edge_orders_child_after_forks_past() {
        // t0: console (event 0), t0: fork (event 1), t1 (child):
        // console (event 2). The child inherits the fork's clock, which
        // includes t0's console via program order — no race.
        let log = [
            ev(0, StepFootprint::Console, Some(0)),
            ev(0, StepFootprint::Fork, Some(1)),
            ev(1, StepFootprint::Console, None),
        ];
        let births = [Birth {
            tid: 1,
            parent_event: Some(1),
        }];
        let a = analyze(&log, &births);
        assert_eq!(a.races, 0, "creation edge must order the child");
    }

    #[test]
    fn missing_birth_edge_over_approximates_to_a_race() {
        // Same log, no birth edge: the child's console looks concurrent
        // with the parent's — a spurious race, which is the sound
        // direction (extra exploration, never missed behaviour).
        let log = [
            ev(0, StepFootprint::Console, Some(0)),
            ev(0, StepFootprint::Fork, Some(1)),
            ev(1, StepFootprint::Console, None),
        ];
        let a = analyze(&log, &[]);
        assert_eq!(a.races, 1);
    }

    // --------------------------------------------------- incremental

    /// Minimal deterministic LCG so the fuzz below needs no external
    /// crate and reruns identically.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self, bound: u64) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 33) % bound.max(1)
        }
    }

    /// A random event over a palette covering every footprint class the
    /// candidate indices distinguish: same-resource classes, throws
    /// (runnable and blocked targets), terminals, effects, locals.
    fn random_event(rng: &mut Lcg, threads: u64, next_point: &mut u32) -> ExecEvent {
        use conch_runtime::ids::ThreadId;
        let tid = rng.next(threads);
        let fp = match rng.next(12) {
            0 => StepFootprint::Local,
            1 => StepFootprint::Mask,
            2 => StepFootprint::Terminal,
            3 => StepFootprint::MVar(MVarId::from_index(1)),
            4 => StepFootprint::MVar(MVarId::from_index(2)),
            5 => StepFootprint::Alloc,
            6 => StepFootprint::Console,
            7 => StepFootprint::Time,
            8 => StepFootprint::Fork,
            9 => StepFootprint::Effect,
            _ => StepFootprint::Throw(ThreadId::from_index(rng.next(threads))),
        };
        let blocked_target = matches!(fp, StepFootprint::Throw(_)) && rng.next(2) == 0;
        let point = if rng.next(3) > 0 {
            *next_point += 1;
            Some(*next_point - 1)
        } else {
            None
        };
        ExecEvent {
            tid,
            fp,
            point,
            blocked_target,
        }
    }

    /// The incremental analyzer against the legacy full recompute, over
    /// DFS-shaped log sequences: each run keeps a random prefix of the
    /// previous run (exercising [`RaceState::rollback`] at every depth,
    /// including 0 and full length) and appends a fresh random suffix.
    /// The two must agree exactly — race count, flags, witnesses.
    #[test]
    fn incremental_matches_legacy_on_backtracking_log_sequences() {
        for seed in 0..20_u64 {
            // Wrapping: the seed spread deliberately overflows u64 (it
            // always wrapped in release; debug builds must agree).
            let mut rng = Lcg(0x9E3779B97F4A7C15 ^ seed.wrapping_mul(0x5851F42D4C957F2D));
            let threads = 2 + rng.next(4);
            let births: Vec<Birth> = (0..threads)
                .map(|t| Birth {
                    tid: t,
                    // Arbitrary but fixed creation edges (t born of an
                    // early event of t-1), consistent across the runs
                    // of one "exploration" like the driver guarantees.
                    // Lazily: `then_some` would evaluate `t - 1` even
                    // at t = 0 and underflow in debug builds.
                    parent_event: (t > 0).then(|| (t - 1) as u32),
                })
                .collect();
            let mut incremental = RaceState::new(false);
            let mut log: Vec<ExecEvent> = Vec::new();
            for _run in 0..60 {
                let keep = if log.is_empty() {
                    0
                } else {
                    rng.next(log.len() as u64 + 1) as usize
                };
                log.truncate(keep);
                let grow = 1 + rng.next(15);
                let mut next_point = log.iter().filter(|e| e.point.is_some()).count() as u32;
                for _ in 0..grow {
                    let e = random_event(&mut rng, threads, &mut next_point);
                    log.push(e);
                }
                let expected = analyze(&log, &births);
                let got = incremental.analyze(&log, &births);
                assert_eq!(
                    got, expected,
                    "seed={seed} diverged on log {log:?} births {births:?}"
                );
            }
        }
    }

    /// Rollback all the way to the empty log must leave the state
    /// indistinguishable from fresh.
    #[test]
    fn incremental_survives_rollback_to_empty() {
        let births = [Birth {
            tid: 0,
            parent_event: None,
        }];
        let long = [
            ev(0, StepFootprint::Console, Some(0)),
            ev(1, StepFootprint::Console, Some(1)),
            ev(0, StepFootprint::MVar(MVarId::from_index(1)), Some(2)),
            ev(1, StepFootprint::MVar(MVarId::from_index(1)), None),
        ];
        let short = [
            ev(1, StepFootprint::Time, Some(0)),
            ev(0, StepFootprint::Time, None),
        ];
        let mut st = RaceState::new(false);
        assert_eq!(st.analyze(&long, &births), analyze(&long, &births));
        // Disjoint first event: common prefix is empty.
        assert_eq!(st.analyze(&short, &births), analyze(&short, &births));
        assert_eq!(st.analyze(&long, &births), analyze(&long, &births));
    }
}
