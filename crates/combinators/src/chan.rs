//! Unbounded FIFO channels built from `MVar`s.
//!
//! §4 of the paper notes that "using only MVars, many complex datatypes
//! for concurrent communication can be built, including typed channels,
//! semaphores and so on". This is the classic Concurrent Haskell `Chan`:
//! a linked list of stream cells, with one `MVar` holding the read end
//! and one the write end.
//!
//! Reads and writes take the end-pointer `MVar` with the §5.1 safe
//! pattern ([`crate::modify_mvar_with`]), so an asynchronous exception
//! arriving while a reader waits for data leaves the channel intact —
//! exactly the exception-safety the paper's combinators exist to provide.

use std::marker::PhantomData;

use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::value::{FromValue, IntoValue, Value};

use crate::locking::modify_mvar_with;

/// An unbounded multi-producer multi-consumer FIFO channel.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_combinators::Chan;
///
/// let mut rt = Runtime::new();
/// let prog = Chan::<i64>::new().and_then(|ch| {
///     ch.send(1).then(ch.send(2)).then(ch.recv()).and_then(move |a| {
///         ch.recv().map(move |b| (a, b))
///     })
/// });
/// assert_eq!(rt.run(prog).unwrap(), (1, 2));
/// ```
pub struct Chan<T> {
    /// Holds the stream cell the next read will consume.
    read_end: MVar<Value>,
    /// Holds the (empty) stream cell the next write will fill.
    write_end: MVar<Value>,
    marker: PhantomData<fn(T) -> T>,
}

impl<T> Clone for Chan<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Chan<T> {}

impl<T> std::fmt::Debug for Chan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Chan(read={:?}, write={:?})",
            self.read_end, self.write_end
        )
    }
}

impl<T: FromValue + IntoValue + 'static> Chan<T> {
    /// Creates an empty channel.
    pub fn new() -> Io<Chan<T>> {
        // hole <- newEmptyMVar; read <- newMVar hole; write <- newMVar hole
        Io::new_empty_mvar::<Value>().and_then(|hole| {
            let hole_v = Value::MVar(hole.id());
            let hole_v2 = hole_v.clone();
            Io::new_mvar::<Value>(hole_v).and_then(move |read_end| {
                Io::new_mvar::<Value>(hole_v2).map(move |write_end| Chan {
                    read_end,
                    write_end,
                    marker: PhantomData,
                })
            })
        })
    }

    /// Appends a value to the channel. Never blocks indefinitely (the
    /// write-end `MVar` is only held for the duration of a write).
    pub fn send(&self, v: T) -> Io<()> {
        let item_payload = v.into_value();
        modify_mvar_with(self.write_end, move |old_hole: Value| {
            let old_hole: MVar<Value> = MVar::from_id(
                old_hole
                    .as_mvar_id()
                    .expect("write end holds a stream cell"),
            );
            Io::new_empty_mvar::<Value>().and_then(move |new_hole| {
                let item =
                    Value::Pair(Box::new(item_payload), Box::new(Value::MVar(new_hole.id())));
                // Fill the old hole with (v, new_hole); the new write end
                // is new_hole. putMVar here is non-interruptible: the old
                // hole is empty by construction (§5.3).
                old_hole
                    .put(item)
                    .map(move |_| (Value::MVar(new_hole.id()), ()))
            })
        })
    }

    /// Removes and returns the channel's oldest value, blocking while the
    /// channel is empty.
    ///
    /// Blocking happens inside the stream-cell `takeMVar`, which is
    /// interruptible (§5.3); if an asynchronous exception arrives while
    /// waiting, the read end is restored and the channel stays usable.
    pub fn recv(&self) -> Io<T> {
        modify_mvar_with(self.read_end, move |stream: Value| {
            let stream: MVar<Value> =
                MVar::from_id(stream.as_mvar_id().expect("read end holds a stream cell"));
            stream.take().map(move |item| match item {
                Value::Pair(v, next) => (*next, T::from_value_or_panic(*v)),
                other => panic!("malformed stream cell: {other}"),
            })
        })
    }

    /// Non-blocking receive: `Some(v)` if a value is ready.
    ///
    /// Restores both the stream cell and the read end if the channel is
    /// empty, so it composes with concurrent senders.
    pub fn try_recv(&self) -> Io<Option<T>> {
        modify_mvar_with(self.read_end, move |stream_v: Value| {
            let stream: MVar<Value> =
                MVar::from_id(stream_v.as_mvar_id().expect("read end holds a stream cell"));
            let stream_v2 = stream_v.clone();
            stream.try_take().map(move |item| match item {
                None => (stream_v2, None),
                Some(Value::Pair(v, next)) => (*next, Some(T::from_value_or_panic(*v))),
                Some(other) => panic!("malformed stream cell: {other}"),
            })
        })
    }
}

impl<T: FromValue + IntoValue + 'static> FromValue for Chan<T> {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Pair(r, w) => Some(Chan {
                read_end: MVar::from_id(r.as_mvar_id()?),
                write_end: MVar::from_id(w.as_mvar_id()?),
                marker: PhantomData,
            }),
            _ => None,
        }
    }
}

impl<T: FromValue + IntoValue + 'static> IntoValue for Chan<T> {
    fn into_value(self) -> Value {
        Value::Pair(
            Box::new(Value::MVar(self.read_end.id())),
            Box::new(Value::MVar(self.write_end.id())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeout;
    use conch_runtime::prelude::*;

    #[test]
    fn fifo_order() {
        let mut rt = Runtime::new();
        let prog = Chan::<i64>::new().and_then(|ch| {
            ch.send(1)
                .then(ch.send(2))
                .then(ch.send(3))
                .then(conch_runtime::io::sequence(vec![
                    ch.recv(),
                    ch.recv(),
                    ch.recv(),
                ]))
        });
        assert_eq!(rt.run(prog).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn recv_blocks_until_send() {
        let mut rt = Runtime::new();
        let prog = Chan::<i64>::new()
            .and_then(|ch| Io::fork(Io::sleep(50).then(ch.send(9))).then(ch.recv()));
        assert_eq!(rt.run(prog).unwrap(), 9);
        assert!(rt.clock() >= 50);
    }

    #[test]
    fn crosses_thread_boundaries() {
        let mut rt = Runtime::new();
        // Producer and consumer threads; consumer reports sum via MVar.
        let prog = Chan::<i64>::new().and_then(|ch| {
            Io::new_empty_mvar::<i64>().and_then(move |result| {
                let producer = conch_runtime::io::for_each(10, move |i| ch.send(i as i64));
                fn consume(ch: Chan<i64>, n: u64, acc: i64, result: MVar<i64>) -> Io<()> {
                    if n == 0 {
                        result.put(acc)
                    } else {
                        ch.recv()
                            .and_then(move |v| consume(ch, n - 1, acc + v, result))
                    }
                }
                Io::fork(producer)
                    .then(Io::fork(consume(ch, 10, 0, result)))
                    .then(result.take())
                    .map(|sum| sum)
            })
        });
        assert_eq!(rt.run(prog).unwrap(), 45);
    }

    #[test]
    fn try_recv_on_empty_is_none() {
        let mut rt = Runtime::new();
        let prog = Chan::<i64>::new().and_then(|ch| ch.try_recv());
        assert_eq!(rt.run(prog).unwrap(), None);
    }

    #[test]
    fn try_recv_then_recv_consistent() {
        let mut rt = Runtime::new();
        let prog = Chan::<i64>::new().and_then(|ch| {
            ch.send(7)
                .then(ch.try_recv())
                .and_then(move |a| ch.send(8).then(ch.recv()).map(move |b| (a, b)))
        });
        assert_eq!(rt.run(prog).unwrap(), (Some(7), 8));
    }

    #[test]
    fn interrupted_reader_leaves_channel_usable() {
        let mut rt = Runtime::new();
        // A reader blocks on an empty channel and is killed; afterwards
        // the channel still delivers to a new reader.
        let prog = Chan::<i64>::new().and_then(|ch| {
            let doomed = ch.recv().map(|_| ()).catch(|_| Io::unit());
            Io::fork(doomed).and_then(move |reader| {
                Io::sleep(10)
                    .then(Io::throw_to(reader, Exception::kill_thread()))
                    .then(Io::sleep(10))
                    .then(ch.send(42))
                    .then(ch.recv())
            })
        });
        assert_eq!(rt.run(prog).unwrap(), 42);
    }

    #[test]
    fn timeout_recv_composes() {
        let mut rt = Runtime::new();
        let prog = Chan::<i64>::new().and_then(|ch| timeout(20, ch.recv()));
        assert_eq!(rt.run(prog).unwrap(), None);
    }

    #[test]
    fn value_round_trip() {
        let mut rt = Runtime::new();
        // A Chan can itself travel through an MVar (it is just a pair of
        // MVar references).
        let prog = Chan::<i64>::new().and_then(|ch| {
            Io::new_empty_mvar::<Chan<i64>>().and_then(move |carrier| {
                carrier
                    .put(ch)
                    .then(carrier.take())
                    .and_then(move |ch2| ch2.send(5).then(ch.recv()))
            })
        });
        assert_eq!(rt.run(prog).unwrap(), 5);
    }
}
