//! B9 — schedule-exploration throughput (`conch-explore`).
//!
//! Measures how fast the explorer enumerates the schedule space of a
//! three-thread workload (two workers contending on one `MVar`, plus a
//! `throwTo` aimed at one of them): explored schedules per second and
//! the sleep-set pruning ratio, with and without a preemption bound.
//!
//! Besides the timing output, writes `BENCH_explore.json` at the
//! workspace root with the headline numbers, for EXPERIMENTS.md.

use std::time::Instant;

use conch_explore::{ExploreConfig, Explorer, Report, RunOutcome, TestCase};
use conch_runtime::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

/// Three threads, one MVar, one kill: worker 1 increments, worker 2 adds
/// ten, the main thread kills worker 1 somewhere in between and reads
/// the survivor's arithmetic.
fn workload() -> Io<i64> {
    Io::new_mvar(0_i64).and_then(|m| {
        Io::fork(
            m.take()
                .and_then(move |n| m.put(n + 1))
                .catch(|_| Io::unit()),
        )
        .and_then(move |w1| {
            Io::fork(
                m.take()
                    .and_then(move |n| m.put(n + 10))
                    .catch(|_| Io::unit()),
            )
            .then(Io::throw_to(w1, Exception::kill_thread()))
            .then(Io::sleep(5))
            .then(m.take())
        })
    })
}

fn explore_once(preemption_bound: Option<usize>) -> Report {
    let cfg = ExploreConfig {
        max_schedules: 100_000,
        preemption_bound,
        ..ExploreConfig::default()
    };
    let result = Explorer::with_config(cfg)
        .check(|| TestCase::new(workload(), |_: &RunOutcome<i64>| Ok(())));
    result.report().clone()
}

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_exploration");
    group.bench_function("three_thread_mvar_throwto", |b| {
        b.iter(|| explore_once(None))
    });
    group.bench_function("three_thread_mvar_throwto_pb2", |b| {
        b.iter(|| explore_once(Some(2)))
    });
    group.finish();

    emit_json();
}

/// One measured exploration per configuration, written as a small JSON
/// report next to the workspace `Cargo.toml`.
fn emit_json() {
    let mut rows = Vec::new();
    for (name, bound) in [
        ("unbounded", None),
        ("preemption_bound_2", Some(2)),
        ("preemption_bound_0", Some(0)),
    ] {
        let start = Instant::now();
        let report = explore_once(bound);
        let secs = start.elapsed().as_secs_f64();
        let per_sec = report.explored as f64 / secs.max(1e-9);
        let denominator = (report.explored + report.pruned).max(1);
        let pruning_ratio = report.pruned as f64 / denominator as f64;
        rows.push(format!(
            concat!(
                "    {{\"config\": \"{}\", \"explored\": {}, \"pruned\": {}, ",
                "\"truncated\": {}, \"complete\": {}, \"seconds\": {:.6}, ",
                "\"schedules_per_sec\": {:.1}, \"pruning_ratio\": {:.4}}}"
            ),
            name,
            report.explored,
            report.pruned,
            report.truncated,
            report.complete,
            secs,
            per_sec,
            pruning_ratio,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"schedule_exploration\",\n  \"workload\": \
         \"3 threads, 1 MVar, 1 throwTo\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
