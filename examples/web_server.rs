//! The §11 case study end-to-end: a fault-tolerant web server facing a
//! hostile mix of clients.
//!
//! Run with `cargo run --example web_server` for the classic demo, or
//! scale it up on the sharded plane:
//!
//! ```text
//! cargo run --release --example web_server -- --clients 100000 --shards 16 --keep-alive 10
//! ```
//!
//! * `--clients N` — keep-alive connections to drive (default 10 000);
//! * `--shards N` — accept shards, each with its own bounded queue and
//!   stats cell (default 4);
//! * `--keep-alive K` — pipelined requests per connection (default 10).
//!
//! Any of the three flags switches to the sharded load; with no flags
//! the classic hostile-client crowd runs unchanged.
//!
//! The classic demo spins up the simulated server with tight budgets,
//! throws a crowd of good, stalling, trickling, garbage and
//! crash-inducing clients at it, then shuts down gracefully and prints
//! the bookkeeping. Every request gets *some* response — the server
//! never wedges and never leaks a worker — which is exactly the claim
//! the paper makes for its Haskell web server built on these
//! combinators.

use conch::prelude::*;
use conch_httpd::client::{garbage_client, good_client, stalling_client, trickling_client};
use conch_httpd::http::Response;
use conch_httpd::net::Listener;
use conch_httpd::server::{handler, start, Handler, ServerConfig, StatsSnapshot};
use conch_httpd::shard::{sharded_load, LoadConfig};
use conch_runtime::io::{for_each, sequence};

fn routes() -> Handler {
    handler(|req| match req.path.as_str() {
        "/" => Io::pure(Response::ok("welcome")),
        "/slow" => Io::sleep(200_000).map(|_| Response::ok("eventually")),
        "/crash" => Io::<Response>::throw(Exception::error_call("handler bug")),
        "/compute" => Io::compute_returning(5_000, Response::ok("computed")),
        _ => Io::pure(Response::status(404)),
    })
}

/// Parses `--clients N --shards N --keep-alive K`; `None` means no
/// sharded flag was given and the classic demo should run.
fn parse_sharded_args() -> Option<LoadConfig> {
    let mut cfg = LoadConfig {
        clients: 10_000,
        shards: 4,
        requests_per_conn: 10,
        ..LoadConfig::default()
    };
    let mut sharded = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| {
            args.next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| panic!("{flag} needs a positive integer argument"))
        };
        match flag.as_str() {
            "--clients" => cfg.clients = value(&mut args),
            "--shards" => cfg.shards = value(&mut args),
            "--keep-alive" => cfg.requests_per_conn = value(&mut args),
            other => panic!("unknown flag {other}; try --clients / --shards / --keep-alive"),
        }
        sharded = true;
    }
    sharded.then_some(cfg)
}

/// The production-scale path: the whole load through the sharded
/// accept/worker plane, then the quiescent-aggregate audit.
fn run_sharded(cfg: LoadConfig) {
    let mut rt = Runtime::new();
    let requests = (cfg.clients * cfg.requests_per_conn) as i64;
    let (oks, snap) = rt
        .run(sharded_load(handler(|_| Io::pure(Response::ok("ok"))), cfg))
        .unwrap();
    println!(
        "sharded run: {} clients x {} pipelined requests over {} shards",
        cfg.clients, cfg.requests_per_conn, cfg.shards
    );
    print_stats(&snap);
    let virtual_secs = rt.clock() as f64 / 1e6;
    println!(
        "virtual time: {}µs ({:.1} requests per virtual second)",
        rt.clock(),
        if rt.clock() == 0 {
            0.0
        } else {
            requests as f64 / virtual_secs
        }
    );
    println!(
        "scheduler: {} steps, {} forks, peak {} thread slots, {} timer ops (wheel high-water {})",
        rt.stats().steps,
        rt.stats().forks,
        rt.stats().max_thread_slots,
        rt.stats().timer_ops,
        rt.stats().max_sleeper_heap,
    );
    assert_eq!(oks, requests, "every pipelined request must come back 200");
    assert!(snap.conserved(), "aggregate must conserve: {snap:?}");
    println!("all invariants hold: every request answered, aggregate conserved");
}

fn main() {
    if let Some(cfg) = parse_sharded_args() {
        return run_sharded(cfg);
    }
    let mut rt = Runtime::new();
    let config = ServerConfig {
        read_timeout: 5_000,
        handler_timeout: 50_000,
        ..ServerConfig::default()
    };

    let prog = Listener::bind().and_then(move |listener| {
        start(listener, routes(), config).and_then(move |server| {
            Io::new_empty_mvar::<i64>().and_then(move |codes| {
                // The client crowd: 6 well-behaved, 2 stalling, 2 trickling
                // (one within budget, one beyond), 1 garbage, 2 crashing,
                // 1 slow-handler, 1 not-found.
                let spawn_all = for_each(6, move |i| {
                    Io::fork(good_client(
                        listener,
                        format!("/{}", if i % 2 == 0 { "" } else { "compute" }),
                        codes,
                    ))
                })
                .then(Io::fork(stalling_client(listener, codes)).map(|_| ()))
                .then(Io::fork(stalling_client(listener, codes)).map(|_| ()))
                .then(Io::fork(trickling_client(listener, "/".into(), 50, codes)).map(|_| ()))
                .then(Io::fork(trickling_client(listener, "/".into(), 2_000, codes)).map(|_| ()))
                .then(Io::fork(garbage_client(listener, codes)).map(|_| ()))
                .then(Io::fork(good_client(listener, "/crash".into(), codes)).map(|_| ()))
                .then(Io::fork(good_client(listener, "/crash".into(), codes)).map(|_| ()))
                .then(Io::fork(good_client(listener, "/slow".into(), codes)).map(|_| ()))
                .then(Io::fork(good_client(listener, "/nowhere".into(), codes)).map(|_| ()));

                const TOTAL: usize = 14;
                spawn_all
                    .then(sequence(
                        (0..TOTAL).map(|_| codes.take()).collect::<Vec<_>>(),
                    ))
                    .and_then(move |statuses| {
                        server
                            .shutdown()
                            .then(server.drain())
                            .then(server.stats.snapshot())
                            .map(move |snap| (statuses, snap))
                    })
            })
        })
    });

    let (mut statuses, snap): (Vec<i64>, StatsSnapshot) = rt.run(prog).unwrap();
    statuses.sort_unstable();

    println!("client-observed status codes: {statuses:?}");
    print_stats(&snap);
    println!(
        "virtual time: {}µs, scheduler steps: {}",
        rt.clock(),
        rt.stats().steps
    );
    println!(
        "threads forked: {}, exceptions delivered: {}",
        rt.stats().forks,
        rt.stats().total_deliveries(),
    );

    // Every client got an answer; nothing is still running.
    assert_eq!(statuses.len(), 14);
    assert!(statuses.iter().all(|s| *s > 0), "a client saw garbage");
    assert_eq!(snap.active, 0, "leaked workers");
    assert_eq!(snap.read_timeouts, 3); // 2 stallers + 1 too-slow trickler
    assert_eq!(snap.handler_errors, 2); // the /crash clients
    assert_eq!(snap.handler_timeouts, 1); // the /slow client
    println!("all invariants hold: no garbled responses, no leaked workers");
}

fn print_stats(snap: &StatsSnapshot) {
    println!(
        "server counters: served={}, 408s={}, 504s={}, 500s={}, 400s={}, active={}",
        snap.served,
        snap.read_timeouts,
        snap.handler_timeouts,
        snap.handler_errors,
        snap.parse_errors,
        snap.active
    );
}
