//! Probabilistic schedule sampling: PCT, uniform-random and swarm
//! strategies over the same driver machinery as the exhaustive DFS.
//!
//! Where the exhaustive engines *enumerate* the branch points recorded
//! by [`crate::driver::DriverState`], the sampler *draws* one schedule
//! at a time: each run installs a [`SamplePolicy`] into the driver, and
//! the policy answers exactly the choices the script does not cover —
//! which is all of them, since sampled runs start from an empty script.
//! Everything else is unchanged: the same invisible-move
//! fast-forwarding, the same branch-point structure (a function of the
//! executed path alone), the same recorded [`Schedule`](crate::Schedule).
//! A sampled failure certificate is therefore byte-compatible with an
//! exhaustive one — it replays and shrinks through the very machinery
//! `Explorer::check` already has.
//!
//! The default policy is **PCT** (probabilistic concurrency testing, in
//! the Coyote/shuttle lineage): every thread gets a random priority at
//! first sight, the highest-priority runnable candidate runs at each
//! branch point, and `depth − 1` priority-*change* points — scheduling
//! decisions drawn uniformly up front — each demote the currently
//! leading thread below everyone else. For a bug that needs `d`
//! ordering constraints among `k` threads over `n` decisions, PCT finds
//! it with probability at least `1/(k·n^(d−1))` per sample — which is
//! what makes a fixed sample budget a meaningful statistical statement
//! about the unenumerable spaces (the sharded httpd under the fault
//! plane) the exhaustive engines cannot finish.
//!
//! # Determinism
//!
//! Sample `i` of a run with base seed `s` is driven entirely by
//! [`stream_seed`]`(s, i)` — never by what other samples observed — so
//! the *set* of sampled runs is a pure function of the configuration.
//! Workers claim sample indices from a shared counter and the budget is
//! always drained (a failure does not stop the sampler), so every
//! counter is a sum over that fixed set and the reported failure (the
//! lowest failing sample index) is bit-identical for any worker count.

use std::cell::RefCell;
use std::rc::Rc;

use conch_runtime::stats::Stats;
use conch_runtime::value::FromValue;

use crate::driver::{DriverState, SleepEntry};
use crate::explorer::{Explorer, Strategy, TestCase};
use crate::frontier::Frontier;
use crate::schedule::Choice;

/// SplitMix64: the classic 64-bit mixing generator. Hand-rolled (seven
/// lines) so sampling adds no dependency and the stream is pinned
/// forever — a seed printed in a bug report must replay on every
/// future version.
pub(crate) struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n`. The modulo bias is below 2⁻⁵⁰ for the
    /// candidate-list sizes that occur here (≤ a few hundred).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// The seed of sample `index` in the stream rooted at `base`. A pure
/// function of `(base, index)` — per-sample behaviour must not depend
/// on which worker ran which earlier sample, or worker counts would
/// diverge.
pub(crate) fn stream_seed(base: u64, index: u64) -> u64 {
    Rng::new(base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// The per-run random policy the driver consults at unscripted branch
/// points (see [`DriverState`]). One policy drives one sample and is
/// discarded; all its state is derived from the sample's seed.
pub(crate) enum SamplePolicy {
    Pct(PctState),
    Uniform(Rng),
}

/// PCT state for one sampled run.
pub(crate) struct PctState {
    rng: Rng,
    /// Random priority per thread, assigned at first sight (in
    /// candidate-list order, which is deterministic per run). Higher
    /// runs first.
    priorities: Vec<(u64, i64)>,
    /// The `depth − 1` scheduling-decision indices at which the
    /// leading thread is demoted. Drawn up front from `1..=horizon`
    /// (the branch-point budget), so they are fixed before the run
    /// starts, as PCT requires.
    change_points: Vec<u32>,
    /// Scheduling decisions made so far this run.
    decisions: u32,
    /// Next demotion priority; decreases so later demotions rank below
    /// earlier ones, and all demotions rank below every initial
    /// (non-negative) priority.
    demote_next: i64,
}

impl SamplePolicy {
    pub fn pct(depth: usize, seed: u64, horizon: usize) -> Self {
        let mut rng = Rng::new(seed);
        let horizon = horizon.max(1) as u64;
        let change_points = (1..depth).map(|_| rng.below(horizon) as u32 + 1).collect();
        SamplePolicy::Pct(PctState {
            rng,
            priorities: Vec::new(),
            change_points,
            decisions: 0,
            demote_next: -1,
        })
    }

    pub fn uniform(seed: u64) -> Self {
        SamplePolicy::Uniform(Rng::new(seed))
    }

    /// The scheduling decision at an unscripted branch point:
    /// `alts` is the candidate list in run-queue order, `sleeping` the
    /// subset the sleep-set rule would skip (always empty for sampled
    /// runs, which carry no DFS context; honored anyway so the policy
    /// composes with scripted prefixes). Returns an index into `alts`.
    pub fn pick_thread(&mut self, alts: &[SleepEntry], sleeping: &[u64]) -> usize {
        let eligible = |i: &usize| !sleeping.contains(&alts[*i].0);
        match self {
            SamplePolicy::Uniform(rng) => {
                let candidates: Vec<usize> = (0..alts.len()).filter(eligible).collect();
                match candidates.len() {
                    0 => 0,
                    n => candidates[rng.below(n as u64) as usize],
                }
            }
            SamplePolicy::Pct(st) => {
                for &(tid, _) in alts {
                    if !st.priorities.iter().any(|&(t, _)| t == tid) {
                        // Initial priorities are non-negative, so every
                        // demotion (negative) outranks none of them.
                        let p = (st.rng.next_u64() >> 2) as i64;
                        st.priorities.push((tid, p));
                    }
                }
                st.decisions += 1;
                let leader = |st: &PctState| {
                    (0..alts.len())
                        .filter(eligible)
                        .max_by_key(|&i| {
                            st.priorities
                                .iter()
                                .find(|&&(t, _)| t == alts[i].0)
                                .map(|&(_, p)| p)
                                .unwrap_or(i64::MIN)
                        })
                        .unwrap_or(0)
                };
                if st.change_points.contains(&st.decisions) {
                    // A change point fires: the thread that would run
                    // is demoted below everyone, handing the lead over.
                    let demoted = alts[leader(st)].0;
                    let p = st.demote_next;
                    st.demote_next -= 1;
                    if let Some(e) = st.priorities.iter_mut().find(|e| e.0 == demoted) {
                        e.1 = p;
                    }
                }
                leader(st)
            }
        }
    }

    /// The delivery decision at an unscripted delivery point. PCT has
    /// no native notion of delivery points (they are this semantics'
    /// extra nondeterminism, §5), so both policies flip a fair coin —
    /// each landing site of a pending exception keeps probability
    /// ≥ 2^-(sites).
    pub fn pick_deliver(&mut self) -> bool {
        match self {
            SamplePolicy::Uniform(rng) => rng.coin(),
            SamplePolicy::Pct(st) => st.rng.coin(),
        }
    }

    /// The arm decision at an unscripted oracle point: uniform over the
    /// arms, so every fault arm of an `Io::choose` site keeps
    /// probability `1/arms` per visit.
    pub fn pick_arm(&mut self, arms: u8) -> u8 {
        let rng = match self {
            SamplePolicy::Uniform(rng) => rng,
            SamplePolicy::Pct(st) => &mut st.rng,
        };
        rng.below(arms.max(1) as u64) as u8
    }
}

/// A sampling strategy resolved into its per-sample policy factory.
pub(crate) enum SamplePlan {
    Pct { depth: usize, seed: u64 },
    Uniform { seed: u64 },
    Swarm { seeds: Vec<u64> },
}

impl SamplePlan {
    /// `None` for exhaustive strategies (which the DFS engines handle).
    pub fn from_strategy(strategy: &Strategy) -> Option<SamplePlan> {
        match strategy {
            Strategy::Exhaustive(_) => None,
            Strategy::Pct { depth, seed } => Some(SamplePlan::Pct {
                depth: *depth,
                seed: *seed,
            }),
            Strategy::UniformRandom { seed } => Some(SamplePlan::Uniform { seed: *seed }),
            Strategy::Swarm { seeds } => Some(SamplePlan::Swarm {
                seeds: seeds.clone(),
            }),
        }
    }

    /// The policy driving sample `index`. A pure function of
    /// `(plan, index, horizon)` — see the module docs on determinism.
    pub fn policy_for(&self, index: u64, horizon: usize) -> SamplePolicy {
        match self {
            SamplePlan::Pct { depth, seed } => {
                SamplePolicy::pct(*depth, stream_seed(*seed, index), horizon)
            }
            SamplePlan::Uniform { seed } => SamplePolicy::uniform(stream_seed(*seed, index)),
            SamplePlan::Swarm { seeds } => {
                // Swarm = interleaved PCT streams: sample i belongs to
                // stream i mod |seeds|, and each stream's PCT depth is
                // itself drawn from its seed (1..=4), so the swarm
                // covers several bug depths at once — the point of
                // swarm testing is diversity of configurations, not
                // just of seeds.
                let n = seeds.len() as u64;
                let base = seeds[(index % n) as usize];
                let depth = 1 + (Rng::new(base).next_u64() % 4) as usize;
                SamplePolicy::pct(depth, stream_seed(base, index / n), horizon)
            }
        }
    }
}

/// FNV-1a over the choice list — the key of the `distinct_schedules`
/// counter. A collision would undercount distinctness but (being a
/// function of the choices alone) never breaks worker-count
/// determinism.
pub(crate) fn schedule_hash(choices: &[Choice]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for c in choices {
        match c {
            Choice::Thread(t) => {
                eat(1);
                eat(*t);
            }
            Choice::Deliver(b) => {
                eat(2);
                eat(*b as u64);
            }
            Choice::Arm(a) => {
                eat(3);
                eat(*a as u64);
            }
        }
    }
    h
}

/// The failure-ranking key of sample `index`: two big-endian limbs, so
/// lexicographic key order is numeric index order and
/// [`Frontier::offer_failure`] keeps the lowest failing sample — the
/// run the sequential sampler fails on first.
pub(crate) fn sample_key(index: usize) -> Vec<u32> {
    let i = index as u64;
    vec![(i >> 32) as u32, i as u32]
}

/// Run one sampling worker to completion: claim sample indices from
/// the shared counter, drive each through a fresh policy, record
/// counters and the lowest-index failure. The budget is always drained
/// (failures don't stop the loop), so reports are worker-count
/// independent even on failing spaces; only `max_total_steps` stops
/// the sampler early.
pub(crate) fn sample_loop<T, F>(
    explorer: &Explorer,
    frontier: &Frontier,
    mut factory: F,
    plan: &SamplePlan,
) where
    T: FromValue,
    F: FnMut() -> TestCase<T>,
{
    let config = explorer.config();
    let mut rt = explorer.make_runtime();
    let state = Rc::new(RefCell::new(DriverState::new(
        Vec::new(),
        Vec::new(),
        config.preemption_bound,
        config.max_depth,
    )));
    let mut local_stats = Stats::default();
    let mut replay_ns = 0u64;

    while let Some(index) = frontier.claim_sample(config.max_schedules) {
        {
            let mut st = state.borrow_mut();
            st.reset();
            st.policy = Some(plan.policy_for(index as u64, config.max_depth));
        }
        let t0 = std::time::Instant::now();
        let (run, schedule) = explorer.run_once(&mut rt, factory(), &state);
        replay_ns += t0.elapsed().as_nanos() as u64;
        state.borrow_mut().policy = None;
        frontier.note_run(run.depth_hit, run.stats.steps, &schedule.choices);
        frontier.note_schedule_hash(schedule_hash(&schedule.choices));
        local_stats.merge(&run.stats);
        local_stats.sampled += 1;
        if let Err(message) = run.check_result {
            frontier.offer_failure(sample_key(index), schedule, message);
        }
        if let Some(budget) = config.max_total_steps {
            if frontier.steps() >= budget {
                frontier.request_stop();
                break;
            }
        }
    }
    frontier.merge_stats(&local_stats);
    frontier.add_timing(replay_ns, 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_stream_is_pinned() {
        // The stream is part of the replay contract: a seed in a bug
        // report must generate the same schedule forever.
        let mut rng = Rng::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn stream_seeds_are_index_sensitive() {
        let a = stream_seed(42, 0);
        let b = stream_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, stream_seed(42, 0), "pure function of (base, index)");
    }

    #[test]
    fn pct_change_point_demotes_the_leader() {
        // depth 2 with horizon 2 puts the single change point on
        // decision 1 or 2 depending on the seed. When it lands on
        // decision 2, the leader of pick 1 is demoted below everyone
        // at pick 2 — the lead must transfer and then stay put.
        let alts: Vec<SleepEntry> = vec![
            (0, conch_runtime::decide::StepFootprint::Local),
            (1, conch_runtime::decide::StepFootprint::Local),
        ];
        let mut transfers = 0;
        for seed in 0..32 {
            let mut p = SamplePolicy::pct(2, seed, 2);
            let first = p.pick_thread(&alts, &[]);
            let second = p.pick_thread(&alts, &[]);
            let third = p.pick_thread(&alts, &[]);
            if first != second {
                // Change point fired at decision 2: lead transferred,
                // and with all change points spent it stays put.
                transfers += 1;
                assert_eq!(
                    second, third,
                    "priorities must be stable after the last change point"
                );
            }
        }
        assert!(
            transfers > 0,
            "some seed must place the change point mid-run"
        );
    }

    #[test]
    fn schedule_hash_distinguishes_choice_kinds() {
        let a = schedule_hash(&[Choice::Thread(1)]);
        let b = schedule_hash(&[Choice::Arm(1)]);
        let c = schedule_hash(&[Choice::Deliver(true)]);
        assert!(a != b && b != c && a != c);
    }

    #[test]
    fn sample_keys_order_numerically() {
        assert!(sample_key(1) < sample_key(2));
        assert!(sample_key(u32::MAX as usize) < sample_key(u32::MAX as usize + 1));
    }
}
