//! The paper's example programs, as reusable term builders.
//!
//! These are the worked examples of §5.1–§5.3 transcribed into the object
//! language, used by the unit tests, the model-checking integration tests
//! (experiment E1), the semantics benchmarks, and the
//! `semantics_explorer` example binary.

use std::rc::Rc;

use crate::term::build::*;
use crate::term::Term;

/// The §5.1 *naive* locking pattern, unsafe under asynchronous exceptions:
///
/// ```haskell
/// do a <- takeMVar m
///    b <- catch (compute a) (\e -> do putMVar m a; throw e)
///    putMVar m b
/// ```
///
/// `compute` is `\a -> return (a + 1)` preceded by `steps` dummy bind
/// steps, giving the scheduler room to deliver an exception in the
/// vulnerable windows.
pub fn naive_lock_update(m: Rc<Term>, steps: u32) -> Rc<Term> {
    bind(
        take_mvar(m.clone()),
        lam(
            "a",
            bind(
                catch(
                    compute_then_return(var("a"), steps),
                    lam("e", seq(put_mvar(m.clone(), var("a")), throw(var("e")))),
                ),
                lam("b", put_mvar(m, var("b"))),
            ),
        ),
    )
}

/// The §5.2/§5.3 *safe* locking pattern:
///
/// ```haskell
/// block (do a <- takeMVar m
///           b <- catch (unblock (compute a)) (\e -> do putMVar m a; throw e)
///           putMVar m b)
/// ```
pub fn safe_lock_update(m: Rc<Term>, steps: u32) -> Rc<Term> {
    block(bind(
        take_mvar(m.clone()),
        lam(
            "a",
            bind(
                catch(
                    unblock(compute_then_return(var("a"), steps)),
                    lam("e", seq(put_mvar(m.clone(), var("a")), throw(var("e")))),
                ),
                lam("b", put_mvar(m, var("b"))),
            ),
        ),
    ))
}

/// `compute a`: `steps` no-op monadic binds, then `return (a + 1)` —
/// enough transitions for an asynchronous exception to land mid-compute.
pub fn compute_then_return(a: Rc<Term>, steps: u32) -> Rc<Term> {
    let mut t = ret(add(a, int(1)));
    for _ in 0..steps {
        t = seq(ret(unit()), t);
    }
    t
}

/// The full E1 scenario: a fresh `MVar` holding `0`, a worker running the
/// given locking body, and a killer thread. The *bad* states are those
/// where every thread is done or stuck and the `MVar` is empty — the lock
/// was lost.
///
/// ```haskell
/// do m <- newMVar 0            -- modelled as newEmptyMVar + putMVar
///    w <- forkIO (catch lockBody (\e -> return ()))
///    throwTo w KillThread
///    takeMVar m                 -- deadlocks iff the lock was lost
/// ```
pub fn lock_scenario(body: impl FnOnce(Rc<Term>) -> Rc<Term>) -> Rc<Term> {
    bind(
        new_empty_mvar(),
        lam("m", {
            let worker = catch(body(var("m")), lam("_e", ret(unit())));
            seq(
                put_mvar(var("m"), int(0)),
                bind(
                    fork(worker),
                    lam(
                        "w",
                        seq(
                            throw_to(var("w"), exc("KillThread")),
                            bind(take_mvar(var("m")), lam("v", ret(var("v")))),
                        ),
                    ),
                ),
            )
        }),
    )
}

/// `do { c <- getChar; putChar c }` — the paper's §3 example.
pub fn echo() -> Rc<Term> {
    bind(get_char(), lam("c", put_char(var("c"))))
}

/// The §7.4 safe point: `unblock (return ())`.
pub fn safe_point() -> Rc<Term> {
    unblock(ret(unit()))
}

/// A masked worker with an explicit safe point between two critical
/// sections — the §7.4 pattern.
pub fn masked_with_safe_point() -> Rc<Term> {
    block(seq(put_char(ch('1')), seq(safe_point(), put_char(ch('2')))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{admits_trace, check_safety, CheckResult, ExploreConfig, Obs, State};

    #[test]
    fn echo_echoes() {
        let init = State::new(echo(), "k");
        let cfg = ExploreConfig::default();
        assert!(admits_trace(
            &init,
            &[Obs::Get('k'), Obs::Put('k')],
            true,
            &cfg
        ));
    }

    #[test]
    fn naive_locking_race_is_reachable() {
        // E1 (counterexample half): with the naive pattern, the model
        // checker finds an interleaving that loses the lock (main
        // deadlocks on takeMVar).
        let prog = lock_scenario(|m| naive_lock_update(m, 2));
        let init = State::new(prog, "");
        let cfg = ExploreConfig::default();
        let r = check_safety(&init, &cfg, |s| s.is_deadlocked(&cfg.rules));
        match r {
            CheckResult::Violation { trace, .. } => {
                // The counterexample must involve an asynchronous delivery.
                let rules: Vec<_> = trace.iter().map(|s| s.rule).collect();
                assert!(
                    rules.contains(&crate::rules::RuleName::Receive)
                        || rules.contains(&crate::rules::RuleName::Interrupt),
                    "counterexample without async delivery: {rules:?}"
                );
            }
            CheckResult::Safe { .. } => {
                panic!("naive locking must be racy — the paper's whole point")
            }
        }
    }

    #[test]
    fn safe_locking_has_no_reachable_deadlock() {
        // E1 (safety half): the block/unblock pattern closes every window.
        let prog = lock_scenario(|m| safe_lock_update(m, 2));
        let init = State::new(prog, "");
        let cfg = ExploreConfig::default();
        let r = check_safety(&init, &cfg, |s| s.is_deadlocked(&cfg.rules));
        match r {
            CheckResult::Safe { complete, states } => {
                assert!(complete, "exploration truncated at {states} states");
            }
            CheckResult::Violation { trace, state, .. } => {
                let rendered: Vec<_> = trace.iter().map(|s| format!("{}", s.rule)).collect();
                panic!("safe locking deadlocked: {rendered:?} -> {state}");
            }
        }
    }

    #[test]
    fn safe_point_opens_exactly_one_window() {
        // masked_with_safe_point: '1' is protected; the safe point lets a
        // pending kill fire before '2'.
        let prog = bind(
            fork(masked_with_safe_point()),
            lam("t", seq(throw_to(var("t"), exc("K")), take_forever())),
        );
        fn take_forever() -> Rc<Term> {
            // Block main forever so (Proc GC) cannot reap the child.
            bind(new_empty_mvar(), lam("mm", take_mvar(var("mm"))))
        }
        let init = State::new(prog, "");
        let cfg = ExploreConfig::default();
        // '1' then killed at the safe point: !1 with no !2, main stuck =
        // deadlocked state where output ended at 1. Check reachability of
        // a state where the child is dead: via safety search on "child
        // dead and only '1' printed" — we approximate with trace checks:
        // both !1 (killed at safe point, then child dead) and !1!2
        // (survived) are admissible prefixes.
        assert!(admits_trace(&init, &[Obs::Put('1')], false, &cfg));
        assert!(admits_trace(
            &init,
            &[Obs::Put('1'), Obs::Put('2')],
            false,
            &cfg
        ));
    }
}
