//! Shared suspended computations — the §8 thunk treatment.
//!
//! §8 of the paper discusses what an implementation must do with
//! "computations in progress" (thunks) when an exception strikes the
//! thread evaluating them:
//!
//! * **Synchronous** exception: re-evaluating the thunk would raise the
//!   same exception again, so it is safe to overwrite the thunk with a
//!   closure that immediately re-raises it.
//! * **Asynchronous** exception: nothing can be concluded about the
//!   thunk, so it must be *reverted* to its initial state (or frozen as
//!   a resumable black hole — "the difference between the two techniques
//!   is operational only, the effect is not observable").
//!
//! [`Thunk`] reproduces this at the library level: a computation shared
//! between threads, evaluated at most once, with exactly the paper's
//! failure policy (sticky synchronous failures, reverted asynchronous
//! interruptions) — distinguished via
//! [`RaiseOrigin`](conch_runtime::RaiseOrigin). While one thread
//! evaluates, the state `MVar` is empty, so concurrent forcers block on
//! it — the classic black-hole behaviour, and (being a `takeMVar`) an
//! interruptible operation per §5.3.

use std::rc::Rc;

use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::value::{FromValue, IntoValue, Value};
use conch_runtime::RaiseOrigin;

/// The stored state of a thunk cell.
enum ThunkState {
    /// Never successfully evaluated.
    Unevaluated,
    /// Evaluated to this value.
    Evaluated(Value),
    /// Failed synchronously: re-raise the same exception on every force.
    FailedSync(conch_runtime::Exception),
}

impl ThunkState {
    fn into_value(self) -> Value {
        match self {
            ThunkState::Unevaluated => Value::Nothing,
            ThunkState::Evaluated(v) => Value::Just(Box::new(v)),
            ThunkState::FailedSync(e) => Value::Exception(e),
        }
    }

    fn from_value(v: Value) -> ThunkState {
        match v {
            Value::Nothing => ThunkState::Unevaluated,
            Value::Just(v) => ThunkState::Evaluated(*v),
            Value::Exception(e) => ThunkState::FailedSync(e),
            other => panic!("malformed thunk state: {other}"),
        }
    }
}

/// A computation shared between threads and evaluated at most once.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_combinators::Thunk;
///
/// let mut rt = Runtime::new();
/// let prog = Io::new_mvar(0_i64).and_then(|evals| {
///     let body = move || {
///         conch_combinators::modify_mvar(evals, |n| Io::pure(n + 1))
///             .then(Io::pure(21_i64))
///     };
///     Thunk::suspend(body, move |t| {
///         // Forced twice, evaluated once.
///         t.force().and_then(move |a| t.force().map(move |b| a + b))
///             .and_then(move |sum| evals.take().map(move |e| (sum, e)))
///     })
/// });
/// assert_eq!(rt.run(prog).unwrap(), (42, 1));
/// ```
pub struct Thunk<T> {
    state: MVar<Value>,
    body: Rc<dyn Fn() -> Io<T>>,
}

impl<T> Clone for Thunk<T> {
    fn clone(&self) -> Self {
        Thunk {
            state: self.state,
            body: Rc::clone(&self.body),
        }
    }
}

impl<T> std::fmt::Debug for Thunk<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Thunk({:?})", self.state)
    }
}

impl<T: FromValue + IntoValue + 'static> Thunk<T> {
    /// Suspends `body` as a shareable thunk, handing the handle to the
    /// continuation `k` (continuation style because a [`Thunk`] carries
    /// native code and so cannot itself travel through the `Value`
    /// world).
    ///
    /// The body is a factory because an interrupted evaluation may have
    /// to run it again (the §8 *revert* policy).
    pub fn suspend<R, K>(body: impl Fn() -> Io<T> + 'static, k: K) -> Io<R>
    where
        R: 'static,
        K: FnOnce(Thunk<T>) -> Io<R> + 'static,
    {
        let body: Rc<dyn Fn() -> Io<T>> = Rc::new(body);
        Io::new_mvar::<Value>(ThunkState::Unevaluated.into_value())
            .and_then(move |state| k(Thunk { state, body }))
    }

    /// Demands the thunk's value.
    ///
    /// * First successful force evaluates the body; later forces return
    ///   the cached value.
    /// * If the body raises **synchronously**, the failure is recorded
    ///   and every subsequent force re-raises the same exception
    ///   without re-evaluating (§8's overwrite-with-raise).
    /// * If the forcing thread is interrupted **asynchronously**, the
    ///   thunk reverts to unevaluated and the exception propagates; a
    ///   later force re-evaluates from scratch.
    /// * While one thread evaluates, other forcers block (interruptibly)
    ///   on the state cell — the black hole of §8.
    pub fn force(&self) -> Io<T> {
        let state = self.state;
        let body = Rc::clone(&self.body);
        // block: the bookkeeping around the user body must not itself be
        // torn by an asynchronous exception (same shape as §5.2 locking).
        Io::block(state.take().and_then(move |raw| {
            match ThunkState::from_value(raw) {
                ThunkState::Evaluated(v) => state
                    .put(ThunkState::Evaluated(v.clone()).into_value())
                    .then(Io::pure(T::from_value_or_panic(v))),
                ThunkState::FailedSync(e) => state
                    .put(ThunkState::FailedSync(e.clone()).into_value())
                    .then(Io::throw(e)),
                ThunkState::Unevaluated => Io::unblock(body())
                    .catch_info(move |e, origin| {
                        let restored = match origin {
                            // §8: synchronous failures are deterministic —
                            // make the failure sticky.
                            RaiseOrigin::Sync => ThunkState::FailedSync(e.clone()),
                            // §8: asynchronous interruptions say nothing
                            // about the thunk — revert it.
                            RaiseOrigin::Async => ThunkState::Unevaluated,
                        };
                        // The state cell is empty here, so this put is
                        // non-interruptible (§5.3).
                        state
                            .put(restored.into_value())
                            .then(Io::rethrow(e, origin))
                    })
                    .and_then(move |t: T| {
                        let v = t.into_value();
                        let give_back = v.clone();
                        state
                            .put(ThunkState::Evaluated(v).into_value())
                            .then(Io::pure(T::from_value_or_panic(give_back)))
                    }),
            }
        }))
    }

    /// Non-blocking peek: `Some(value)` if already evaluated.
    pub fn peek(&self) -> Io<Option<T>> {
        let state = self.state;
        Io::block(state.take().and_then(move |raw| {
            let st = ThunkState::from_value(raw);
            let result = match &st {
                ThunkState::Evaluated(v) => Some(T::from_value_or_panic(v.clone())),
                _ => None,
            };
            state.put(st.into_value()).then(Io::pure(result))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modify_mvar;
    use conch_runtime::prelude::*;

    fn counting_thunk(evals: MVar<i64>, result: i64) -> impl Fn() -> Io<i64> + 'static {
        move || modify_mvar(evals, |n| Io::pure(n + 1)).then(Io::pure(result))
    }

    #[test]
    fn evaluates_once() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(0_i64).and_then(|evals| {
            Thunk::suspend(counting_thunk(evals, 5), move |t| {
                let (t2, t3) = (t.clone(), t.clone());
                t.force()
                    .then(t2.force())
                    .then(t3.force())
                    .and_then(move |v| evals.take().map(move |e| (v, e)))
            })
        });
        assert_eq!(rt.run(prog).unwrap(), (5, 1));
    }

    #[test]
    fn peek_before_and_after() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(0_i64).and_then(|evals| {
            Thunk::suspend(counting_thunk(evals, 9), move |t| {
                let (t2, t3) = (t.clone(), t.clone());
                t.peek().and_then(move |before| {
                    t2.force().then(t3.peek()).map(move |after| (before, after))
                })
            })
        });
        assert_eq!(rt.run(prog).unwrap(), (None, Some(9)));
    }

    #[test]
    fn sync_failure_is_sticky() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(0_i64).and_then(|evals| {
            let body = move || {
                modify_mvar(evals, |n| Io::pure(n + 1))
                    .then(Io::<i64>::throw(Exception::error_call("bad thunk")))
            };
            Thunk::suspend(body, move |t| {
                let t2 = t.clone();
                t.force()
                    .catch(|_| Io::pure(-1))
                    .then(t2.force().catch(|e| {
                        assert_eq!(e, Exception::error_call("bad thunk"));
                        Io::pure(-2)
                    }))
                    .and_then(move |r| evals.take().map(move |e| (r, e)))
            })
        });
        // Second force re-raised WITHOUT re-evaluating: evals == 1.
        assert_eq!(rt.run(prog).unwrap(), (-2, 1));
    }

    #[test]
    fn async_interruption_reverts() {
        let mut rt = Runtime::new();
        // A forcer is killed mid-evaluation; afterwards a fresh force
        // re-evaluates and succeeds.
        let prog = Io::new_mvar(0_i64).and_then(|evals| {
            let body = move || {
                modify_mvar(evals, |n| Io::pure(n + 1))
                    .then(Io::compute(5_000))
                    .then(Io::pure(7_i64))
            };
            Thunk::suspend(body, move |t| {
                let t2 = t.clone();
                let forcer = t.force().map(|_| ()).catch(|_| Io::unit());
                Io::<ThreadId>::block(Io::fork(forcer)).and_then(move |f| {
                    Io::sleep(0)
                        .then(Io::throw_to(f, Exception::kill_thread()))
                        .then(Io::sleep(1_000))
                        .then(t2.force())
                        .and_then(move |v| evals.take().map(move |e| (v, e)))
                })
            })
        });
        let (v, evals) = rt.run(prog).unwrap();
        assert_eq!(v, 7);
        // Evaluated twice iff the kill landed mid-evaluation; once if the
        // kill landed before the body's first step. Either way the value
        // is correct and the thunk was never poisoned.
        assert!(evals == 1 || evals == 2, "evals = {evals}");
    }

    #[test]
    fn concurrent_forcers_black_hole() {
        let mut rt = Runtime::new();
        // Two threads force concurrently; the body is slow; both get the
        // value, and it is evaluated exactly once.
        let prog = Io::new_mvar(0_i64).and_then(|evals| {
            let body = move || {
                modify_mvar(evals, |n| Io::pure(n + 1))
                    .then(Io::compute(2_000))
                    .then(Io::pure(3_i64))
            };
            Thunk::suspend(body, move |t| {
                let t2 = t.clone();
                Io::new_empty_mvar::<i64>().and_then(move |out| {
                    Io::fork(t.force().and_then(move |v| out.put(v)))
                        .then(Io::fork(t2.force().and_then(move |v| out.put(v))))
                        .then(out.take())
                        .and_then(move |a| out.take().map(move |b| (a, b)))
                        .and_then(move |pair| evals.take().map(move |e| (pair, e)))
                })
            })
        });
        let ((a, b), evals) = rt.run(prog).unwrap();
        assert_eq!((a, b), (3, 3));
        assert_eq!(evals, 1, "black hole must prevent double evaluation");
    }

    #[test]
    fn blocked_forcer_is_interruptible() {
        let mut rt = Runtime::new();
        // Forcer B blocks on the black hole while A evaluates; B is
        // killed while blocked (the §5.3 guarantee), A still finishes.
        let prog = Io::new_mvar(0_i64).and_then(|evals| {
            let body = move || {
                modify_mvar(evals, |n| Io::pure(n + 1))
                    .then(Io::compute(5_000))
                    .then(Io::pure(4_i64))
            };
            Thunk::suspend(body, move |t| {
                let tb = t.clone();
                Io::new_empty_mvar::<String>().and_then(move |out| {
                    let b_thread = tb
                        .force()
                        .map(|v| format!("B got {v}"))
                        .catch(|e| Io::pure(format!("B interrupted by {e}")))
                        .and_then(move |s| out.put(s));
                    Io::fork(t.force().map(|_| ())).and_then(move |_a| {
                        Io::<ThreadId>::block(Io::fork(b_thread)).and_then(move |b| {
                            Io::sleep(0)
                                .then(Io::throw_to(b, Exception::kill_thread()))
                                .then(out.take())
                        })
                    })
                })
            })
        });
        let msg = rt.run(prog).unwrap();
        assert!(
            msg == "B interrupted by KillThread" || msg == "B got 4",
            "unexpected: {msg}"
        );
    }
}
