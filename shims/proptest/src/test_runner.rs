//! Deterministic case scheduling and failure persistence.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The generation RNG handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given case seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x6a09_e667_f3bc_c909,
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` of zero yields zero).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Drives one `proptest!` test: regression seeds first, then `cases`
/// fresh deterministic seeds derived from the test's name.
pub struct TestRunner {
    seeds: Vec<u64>,
    next: usize,
    current: u64,
    name: &'static str,
    persistence: Option<PathBuf>,
}

impl TestRunner {
    /// Builds the case schedule for `name` (a `module::function` path).
    ///
    /// `src_file` and `manifest_dir` locate the sibling
    /// `.proptest-regressions` file; seeds recorded there as
    /// `ccs <seed>` lines replay before any fresh cases. Set
    /// `PROPTEST_SEED` to perturb the fresh-case stream.
    pub fn new(
        config: crate::ProptestConfig,
        name: &'static str,
        src_file: &str,
        manifest_dir: &str,
    ) -> Self {
        let persistence = regressions_path(src_file, manifest_dir);
        let mut seeds = Vec::new();
        if let Some(p) = &persistence {
            seeds.extend(load_regression_seeds(p));
        }
        let master = fnv1a(name.as_bytes())
            ^ std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0);
        let mut mix = TestRng::from_seed(master);
        seeds.extend((0..config.cases).map(|_| mix.next_u64()));
        TestRunner {
            seeds,
            next: 0,
            current: 0,
            name,
            persistence,
        }
    }

    /// The RNG for the next case, or `None` when the schedule is done.
    pub fn next_case(&mut self) -> Option<TestRng> {
        let seed = *self.seeds.get(self.next)?;
        self.next += 1;
        self.current = seed;
        Some(TestRng::from_seed(seed))
    }

    /// A guard that records the current case's seed if the test body
    /// panics while it is live. Forget it on success.
    pub fn case_guard(&self) -> CaseGuard {
        CaseGuard {
            name: self.name,
            seed: self.current,
            case_index: self.next,
            persistence: self.persistence.clone(),
        }
    }
}

/// See [`TestRunner::case_guard`].
pub struct CaseGuard {
    name: &'static str,
    seed: u64,
    case_index: usize,
    persistence: Option<PathBuf>,
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        eprintln!(
            "proptest(shim): {} failed at case {} (seed {}); the seed replays first on the next run",
            self.name, self.case_index, self.seed
        );
        if let Some(path) = &self.persistence {
            if !load_regression_seeds(path).contains(&self.seed) {
                let mut opts = OpenOptions::new();
                if let Ok(mut f) = opts.create(true).append(true).open(path) {
                    let _ = writeln!(f, "ccs {} # seed for {}", self.seed, self.name);
                }
            }
        }
    }
}

/// FNV-1a over `bytes`, for stable per-test master seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Locates the `.proptest-regressions` sibling of `src_file`.
///
/// `file!()` paths are relative to the workspace root while tests run
/// with the package's manifest dir as cwd, so try the path as-is, then
/// every suffix of it under `manifest_dir`.
fn regressions_path(src_file: &str, manifest_dir: &str) -> Option<PathBuf> {
    let rel = Path::new(src_file).with_extension("proptest-regressions");
    if rel.parent().is_some_and(Path::exists) || rel.exists() {
        return Some(rel);
    }
    let components: Vec<_> = rel.components().collect();
    for skip in 1..components.len() {
        let suffix: PathBuf = components[skip..].iter().collect();
        let candidate = Path::new(manifest_dir).join(&suffix);
        if candidate.exists() || candidate.parent().is_some_and(Path::exists) {
            return Some(candidate);
        }
    }
    None
}

/// Parses `ccs <seed>` lines; upstream `cc <hex>` entries are ignored.
fn load_regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("ccs ")?;
            let num = rest.split_whitespace().next()?;
            num.parse::<u64>().ok()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let mk = || {
            TestRunner::new(
                crate::ProptestConfig {
                    cases: 5,
                    ..Default::default()
                },
                "some::test",
                "tests/nonexistent.rs",
                "/nonexistent",
            )
        };
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..5 {
            let (x, y) = (a.next_case(), b.next_case());
            assert_eq!(x.is_some(), y.is_some());
            if let (Some(mut x), Some(mut y)) = (x, y) {
                assert_eq!(x.next_u64(), y.next_u64());
            }
        }
        assert!(a.next_case().is_none());
    }

    #[test]
    fn regression_seeds_parse_and_upstream_lines_skip() {
        let dir = std::env::temp_dir().join("proptest_shim_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("case.proptest-regressions");
        std::fs::write(
            &path,
            "# comment\ncc deadbeefdeadbeef # upstream blob\nccs 42 # ours\nccs 7\n",
        )
        .unwrap();
        assert_eq!(load_regression_seeds(&path), vec![42, 7]);
        std::fs::remove_file(&path).unwrap();
    }
}
