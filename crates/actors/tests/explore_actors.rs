//! Supervision invariants, proved on every schedule.
//!
//! Each test explores a small actor program under `conch-explore` and
//! checks an invariant on *every* schedule of the (bounded) space:
//!
//! * **no lost messages** — an asynchronous `KillThread` landing
//!   anywhere in `Mailbox::recv` leaves the message either still
//!   queued or fully delivered (`len + delivered == sent`); the
//!   companion test shows the pre-fix [`Mailbox::recv_racy`] *does*
//!   have a lost-message schedule, which the explorer finds and
//!   shrinks — the regression certificate for the masked take→deliver
//!   window;
//! * **monitors fire exactly once** — even when registration races the
//!   target's death;
//! * **links cascade / trap-exits observe** — an abnormal exit signals
//!   every linked peer on every schedule, and a trapping peer converts
//!   the signal to a message and survives;
//! * **restarts preserve state, shutdown leaves no orphans** — a
//!   supervised counter crashes mid-stream and the restarted
//!   incarnation (same mailbox, same state cell) finishes the stream;
//!   killing the supervisor always reaps the child.
//!
//! The key spaces are explored by both the sequential and the 4-worker
//! engine and the coverage reports must be bit-identical — the
//! determinism contract extended to the actor layer.

use conch_actors::{
    child_spec, link, monitor, spawn_actor, spawn_actor_on, spawn_supervisor, ChildSpec, Down,
    Mailbox, Signal, Strategy, SupervisorSpec,
};
use conch_explore::{
    CheckResult, ExploreConfig, Explorer, Reduction, Report, RunOutcome, TestCase,
};
use conch_runtime::exception::{Exception, ExitReason};
use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::value::Value;

type Space = fn() -> Io<Vec<i64>>;
type Check = fn(&RunOutcome<Vec<i64>>) -> Result<(), String>;

fn explore(space: Space, check: Check, workers: usize) -> CheckResult {
    // Same bounds as the httpd fault spaces: preemption bound 2 keeps
    // the schedule dimension tractable while exception-delivery points
    // still branch fully, so kill placement is exhaustive.
    let cfg = ExploreConfig {
        max_schedules: 100_000,
        max_depth: 512,
        step_budget: 100_000,
        preemption_bound: Some(2),
        strategy: conch_explore::Strategy::Exhaustive(Reduction::Dpor),
        ..ExploreConfig::default()
    };
    let explorer = Explorer::with_config(cfg);
    if workers == 1 {
        explorer.check(move || TestCase::new(space(), check))
    } else {
        explorer.check_parallel(workers, move || TestCase::new(space(), check))
    }
}

fn explore_pass(space: Space, check: Check, workers: usize) -> Report {
    explore(space, check, workers).expect_pass().clone()
}

fn reason_code(r: &ExitReason) -> i64 {
    match r {
        ExitReason::Normal => 0,
        ExitReason::Killed => 1,
        ExitReason::Crashed(e) if e.is_exit_signal() => 2,
        ExitReason::Crashed(_) => 3,
    }
}

/// Polls until the actor commits an exit reason.
fn wait_dead_code(a: conch_actors::ActorRef<Value>) -> Io<i64> {
    a.exit_reason().and_then(move |r| match r {
        Some(r) => Io::pure(reason_code(&r)),
        None => Io::sleep(25).then(wait_dead_code(a)),
    })
}

// -- satellite: recv must not lose a dequeued message ----------------------

/// One message, one receiver, one kill. The receiver dequeues with the
/// masked take→deliver window and records delivery in `sink` under the
/// same mask (the actor-shell usage pattern). The kill is delivered
/// with the §9 synchronous `throwTo`, so by the time the audit reads
/// the state the receiver is dead (or done). Returns
/// `[queued, delivered]`.
fn recv_no_loss_space() -> Io<Vec<i64>> {
    Mailbox::<i64>::new(1).and_then(|mb| {
        Io::new_mvar(0_i64).and_then(move |sink| {
            mb.send(7).then(
                Io::fork(Io::block(mb.recv().and_then(move |_| {
                    Io::block(sink.take().and_then(move |n| sink.put(n + 1)))
                })))
                .and_then(move |tid| {
                    Io::throw_to_sync(tid, Exception::kill_thread())
                        .then(mb.len())
                        .and_then(move |len| {
                            Io::block(sink.take().and_then(move |n| sink.put(n).map(move |_| n)))
                                .map(move |got| vec![len, got])
                        })
                }),
            )
        })
    })
}

/// The pre-fix shape: dequeue, then an unmasked step, then record. On
/// the schedule where the kill lands in that window the message is
/// neither queued nor delivered.
fn recv_racy_space() -> Io<Vec<i64>> {
    Mailbox::<i64>::new(1).and_then(|mb| {
        Io::new_mvar(0_i64).and_then(move |sink| {
            mb.send(7).then(
                Io::fork(mb.recv_racy().and_then(move |_: i64| {
                    Io::block(sink.take().and_then(move |n| sink.put(n + 1)))
                }))
                .and_then(move |tid| {
                    Io::throw_to_sync(tid, Exception::kill_thread())
                        .then(mb.len())
                        .and_then(move |len| {
                            Io::block(sink.take().and_then(move |n| sink.put(n).map(move |_| n)))
                                .map(move |got| vec![len, got])
                        })
                }),
            )
        })
    })
}

fn message_conserved(out: &RunOutcome<Vec<i64>>) -> Result<(), String> {
    match &out.result {
        Ok(v) if v[0] + v[1] == 1 => Ok(()),
        Ok(v) => Err(format!(
            "message lost or duplicated: queued {} + delivered {} != 1",
            v[0], v[1]
        )),
        Err(e) => Err(format!("run failed: {e:?}")),
    }
}

#[test]
fn recv_never_loses_a_message_on_any_schedule() {
    let report = explore_pass(recv_no_loss_space, message_conserved, 1);
    assert!(
        report.complete,
        "exploration must be exhaustive: {report:?}"
    );
    assert!(report.explored >= 2, "{report:?}");
}

#[test]
fn recv_racy_has_a_lost_message_schedule() {
    // The regression direction: the explorer must *find* the bug the
    // masked window in `recv` closes, and shrink it to a certificate.
    let result = explore(recv_racy_space, message_conserved, 1);
    let failure = result.expect_fail();
    assert!(
        failure.message.contains("message lost"),
        "unexpected failure: {}",
        failure.message
    );
    assert!(
        !failure.schedule.is_empty(),
        "shrinking must leave a replayable schedule"
    );
}

// -- monitors fire exactly once --------------------------------------------

/// Registration races the target's death: the actor exits immediately
/// while the main thread monitors it. Returns `[mref, extra]` where
/// `extra` is whatever is left in the watcher mailbox after the one
/// expected `Down` — any second delivery would queue there.
fn monitor_once_space() -> Io<Vec<i64>> {
    Mailbox::<Down>::new(2).and_then(|watcher| {
        spawn_actor(1, |_mb: Mailbox<i64>| Io::unit()).and_then(move |a| {
            monitor(&a, watcher, 11).then(watcher.recv().and_then(move |down: Down| {
                Io::sleep(50)
                    .then(watcher.len())
                    .map(move |extra| vec![down.mref, extra])
            }))
        })
    })
}

fn monitor_fired_once(out: &RunOutcome<Vec<i64>>) -> Result<(), String> {
    match &out.result {
        Ok(v) if v == &vec![11, 0] => Ok(()),
        Ok(v) => Err(format!("expected exactly one Down(mref 11), got {v:?}")),
        Err(e) => Err(format!("run failed: {e:?}")),
    }
}

#[test]
fn monitor_fires_exactly_once_under_registration_death_race() {
    let report = explore_pass(monitor_once_space, monitor_fired_once, 1);
    assert!(
        report.complete,
        "exploration must be exhaustive: {report:?}"
    );
    // DPOR may prove the registration/death orders independent (that
    // independence *is* the exactly-once property) and collapse them,
    // but the race must at least have been examined.
    assert!(
        report.explored + report.pruned >= 2,
        "the registration/death race must be in the space: {report:?}"
    );
}

// -- links cascade; trap-exits observe -------------------------------------

/// `a` crashes; `b` (non-trapping, blocked on recv) is linked to it.
/// Returns `[b's exit code]` — on every schedule `b` dies crashed by
/// the exit signal, whichever side of the link registration `a`'s
/// death lands on.
fn link_cascade_space() -> Io<Vec<i64>> {
    spawn_actor(1, |mb: Mailbox<i64>| mb.recv().map(|_| ())).and_then(|b| {
        spawn_actor(1, |_mb: Mailbox<i64>| {
            Io::throw(Exception::error_call("crash"))
        })
        .and_then(move |a| link(&a, &b).then(wait_dead_code(b.erase()).map(|code| vec![code])))
    })
}

fn cascaded(out: &RunOutcome<Vec<i64>>) -> Result<(), String> {
    match &out.result {
        Ok(v) if v == &vec![2] => Ok(()),
        Ok(v) => Err(format!("peer should die crashed-by-signal (2), got {v:?}")),
        Err(e) => Err(format!("run failed: {e:?}")),
    }
}

#[test]
fn link_cascades_on_every_schedule() {
    let report = explore_pass(link_cascade_space, cascaded, 1);
    assert!(
        report.complete,
        "exploration must be exhaustive: {report:?}"
    );
}

/// Same crash, but `b` traps: it converts the signal to a message,
/// records which variant arrived, and exits normally. Returns
/// `[observed, b's exit code]` — `[1, 0]` on every schedule.
fn trap_exit_space() -> Io<Vec<i64>> {
    Io::new_mvar(0_i64).and_then(|cell| {
        spawn_actor(2, move |mb: Mailbox<i64>| {
            mb.recv_trapping().and_then(move |sig| {
                let v = match sig {
                    Signal::Exit { .. } => 1,
                    Signal::Msg(_) => 2,
                };
                Io::block(cell.take().and_then(move |_| cell.put(v)))
            })
        })
        .and_then(move |b| {
            spawn_actor(1, |_mb: Mailbox<i64>| Io::throw(Exception::error_call("x"))).and_then(
                move |a| {
                    link(&a, &b).then(wait_dead_code(b.erase()).and_then(move |code| {
                        Io::block(cell.take().and_then(move |v| cell.put(v).map(move |_| v)))
                            .map(move |seen| vec![seen, code])
                    }))
                },
            )
        })
    })
}

fn trapped(out: &RunOutcome<Vec<i64>>) -> Result<(), String> {
    match &out.result {
        Ok(v) if v == &vec![1, 0] => Ok(()),
        Ok(v) => Err(format!(
            "trapping peer should observe Exit and survive ([1, 0]), got {v:?}"
        )),
        Err(e) => Err(format!("run failed: {e:?}")),
    }
}

#[test]
fn trap_exit_observes_and_survives_on_every_schedule() {
    let report = explore_pass(trap_exit_space, trapped, 1);
    assert!(
        report.complete,
        "exploration must be exhaustive: {report:?}"
    );
}

// -- supervised restart preserves state; shutdown reaps --------------------

fn counter_loop(mb: Mailbox<i64>, state: MVar<i64>) -> Io<()> {
    mb.recv().and_then(move |msg| {
        if msg < 0 {
            Io::throw(Exception::error_call("poison"))
        } else {
            Io::block(state.take().and_then(move |n| state.put(n + 2)))
                .then(counter_loop(mb, state))
        }
    })
}

fn counter_child(state: MVar<i64>, inbox: Mailbox<i64>) -> ChildSpec {
    child_spec(move || {
        spawn_actor_on(inbox, move |mb: Mailbox<i64>| counter_loop(mb, state)).map(|a| a.erase())
    })
}

fn wait_counter(state: MVar<i64>, at_least: i64) -> Io<i64> {
    Io::block(state.take().and_then(move |n| state.put(n).map(move |_| n))).and_then(move |n| {
        if n >= at_least {
            Io::pure(n)
        } else {
            Io::sleep(25).then(wait_counter(state, at_least))
        }
    })
}

/// A supervised counter receives `+2`, poison (crash), `+2`. The
/// restarted incarnation shares mailbox and state cell, so on every
/// schedule the counter reaches 4 — no update lost to the crash, no
/// message lost to the restart. Then the supervisor is killed and the
/// audit waits for the child to be reaped. Returns
/// `[counter, child exit code]`.
fn restart_state_space() -> Io<Vec<i64>> {
    Io::new_mvar(0_i64).and_then(|state| {
        Mailbox::<i64>::new(8).and_then(move |inbox| {
            let spec = SupervisorSpec::new(Strategy::OneForOne)
                .intensity(5, 1_000_000)
                .child(counter_child(state, inbox));
            spawn_supervisor(spec).and_then(move |sup| {
                inbox
                    .send(1)
                    .then(inbox.send(-1))
                    .then(inbox.send(1))
                    .then(wait_counter(state, 4))
                    .and_then(move |n| {
                        sup.child_refs().and_then(move |kids| {
                            let kid = kids[0];
                            sup.shutdown_sync()
                                .then(wait_dead_code(kid))
                                .map(move |code| vec![n, code])
                        })
                    })
            })
        })
    })
}

fn restarted_and_reaped(out: &RunOutcome<Vec<i64>>) -> Result<(), String> {
    match &out.result {
        Ok(v) if v == &vec![4, 1] => Ok(()),
        Ok(v) => Err(format!(
            "expected counter 4 and a Killed (1) child, got {v:?}"
        )),
        Err(e) => Err(format!("run failed: {e:?}")),
    }
}

#[test]
fn supervised_restart_preserves_state_and_shutdown_reaps() {
    let report = explore_pass(restart_state_space, restarted_and_reaped, 1);
    assert!(
        report.complete,
        "exploration must be exhaustive: {report:?}"
    );
    assert!(
        report.stats.kill_thread_deaths > 0,
        "the shutdown path must actually kill: {report:?}"
    );
}

// -- determinism: worker counts must not change coverage -------------------

#[test]
fn actor_spaces_report_identically_at_any_worker_count() {
    for (space, check) in [
        (recv_no_loss_space as Space, message_conserved as Check),
        (monitor_once_space, monitor_fired_once),
        (restart_state_space, restarted_and_reaped),
    ] {
        let sequential = explore_pass(space, check, 1);
        let parallel = explore_pass(space, check, 4);
        assert_eq!(
            sequential, parallel,
            "actor-space coverage must be bit-identical across engines"
        );
    }
}
