//! Fault × schedule exploration: the tentpole integration tests.
//!
//! Each test explores one of the canonical spaces from
//! [`conch_faults::spaces`]: an httpd server under
//! [`Injector::Explore`](conch_faults::Injector), so every injection
//! site is an `Io::choose` branch point, and `conch-explore` enumerates
//! the *product* of fault decisions and scheduling decisions. The
//! properties checked on every run of every explored schedule are the
//! recovery invariants the PR hardens the server for:
//!
//! * **conservation** — after the server drains,
//!   `accepted == served + timed-out + errored + aborted + killed + shed`
//!   and `active == 0`: no connection's outcome is lost or
//!   double-counted, whatever fault fired and wherever `KillThread`
//!   landed;
//! * **no leaks** — `drain` terminates (so the active count really
//!   reaches zero) on every schedule, and the whole exploration is
//!   `complete` (no run was cut off by depth or step budgets while
//!   threads still held resources);
//! * **liveness after faults** — a healthy probe sent after the fault
//!   sequence is answered `200` on every schedule.
//!
//! Each space is explored twice — sequential engine and 4-worker
//! work-stealing engine — and the coverage reports must be equal, the
//! determinism contract extended to fault branch points.

use conch_explore::{ExploreConfig, Explorer, Reduction, Report, RunOutcome, Strategy, TestCase};
use conch_faults::spaces::{
    actor_space, conn_fault_space, cross_shard_kill_space, holds_actor_invariants,
    holds_cross_shard_invariants, holds_invariants, sharded_pipeline_space, storm_space,
    supervised_pool_space,
};
use conch_httpd::server::StatsSnapshot;
use conch_runtime::io::Io;

fn check_invariants(out: &RunOutcome<(i64, i64, StatsSnapshot)>) -> Result<(), String> {
    match &out.result {
        Ok(v) => holds_invariants(v),
        Err(e) => Err(format!("run failed: {e:?}")),
    }
}

fn explore(space: fn() -> Io<(i64, i64, StatsSnapshot)>, workers: usize) -> Report {
    // Preemption bound 2: fault arms and exception-delivery points
    // always branch fully regardless of the bound (only *preemptive*
    // thread switches are rationed), so fault coverage stays exhaustive
    // while the schedule dimension stays tractable — these spaces
    // complete in milliseconds, where the unbounded product runs past
    // 400k schedules without converging.
    let cfg = ExploreConfig {
        max_schedules: 100_000,
        max_depth: 512,
        step_budget: 100_000,
        preemption_bound: Some(2),
        strategy: Strategy::Exhaustive(Reduction::Dpor),
        ..ExploreConfig::default()
    };
    let explorer = Explorer::with_config(cfg);
    let result = if workers == 1 {
        explorer.check(|| TestCase::new(space(), check_invariants))
    } else {
        explorer.check_parallel(workers, move || TestCase::new(space(), check_invariants))
    };
    result.report().clone()
}

#[test]
fn conn_fault_space_holds_invariants_on_every_schedule() {
    let report = explore(conn_fault_space, 1);
    assert!(
        report.complete,
        "exploration must be exhaustive: {report:?}"
    );
    assert!(
        report.faults_injected > 0,
        "the fault arms must actually be visited: {report:?}"
    );
    // Five arms, each with at least one schedule.
    assert!(report.explored >= 5, "{report:?}");
}

#[test]
fn conn_fault_space_reports_identically_at_any_worker_count() {
    let sequential = explore(conn_fault_space, 1);
    let parallel = explore(conn_fault_space, 4);
    assert_eq!(
        sequential, parallel,
        "fault×schedule coverage must be bit-identical across engines"
    );
}

#[test]
fn storm_space_holds_invariants_on_every_schedule() {
    let report = explore(storm_space, 1);
    assert!(
        report.complete,
        "exploration must be exhaustive: {report:?}"
    );
    assert!(
        report.faults_injected > 0,
        "some schedule must deliver the strike: {report:?}"
    );
    assert!(report.explored >= 2, "{report:?}");
}

#[test]
fn storm_space_reports_identically_at_any_worker_count() {
    let sequential = explore(storm_space, 1);
    let parallel = explore(storm_space, 4);
    assert_eq!(sequential, parallel);
}

#[test]
fn supervised_pool_space_holds_invariants_on_every_schedule() {
    let report = explore(supervised_pool_space, 1);
    assert!(
        report.complete,
        "exploration must be exhaustive: {report:?}"
    );
    assert!(
        report.faults_injected > 0,
        "worker and supervisor strikes must be visited: {report:?}"
    );
    // Two targets (worker, pool supervisor), each struck or spared.
    assert!(report.explored >= 4, "{report:?}");
}

#[test]
fn supervised_pool_space_reports_identically_at_any_worker_count() {
    let sequential = explore(supervised_pool_space, 1);
    let parallel = explore(supervised_pool_space, 4);
    assert_eq!(
        sequential, parallel,
        "pool fault×schedule coverage must be bit-identical across engines"
    );
}

/// Satellite of the sharded-plane PR: a `KillThread` between two
/// pipelined requests must not lose the in-flight request from the
/// conservation law. The space certifies the *quiescent-aggregate*
/// protocol (per-shard drain, then summed snapshots) on every schedule
/// of the strike × delivery product, and the untouched shard must keep
/// serving (`200` probe) throughout.
#[test]
fn sharded_pipeline_space_holds_invariants_on_every_schedule() {
    let report = explore(sharded_pipeline_space, 1);
    assert!(
        report.complete,
        "exploration must be exhaustive: {report:?}"
    );
    assert!(
        report.faults_injected > 0,
        "some schedule must strike the pipelined handler: {report:?}"
    );
    // Struck or spared, each with at least one schedule.
    assert!(report.explored >= 2, "{report:?}");
}

#[test]
fn sharded_pipeline_space_reports_identically_at_any_worker_count() {
    let sequential = explore(sharded_pipeline_space, 1);
    let parallel = explore(sharded_pipeline_space, 4);
    assert_eq!(
        sequential, parallel,
        "sharded fault×schedule coverage must be bit-identical across engines"
    );
}

// ------------------------------------------------------------- sampling
//
// The fault spaces are the motivating case for schedule *sampling*:
// their unbounded products are unenumerable, and PCT draws schedules
// straight from the unbounded space — no preemption bound — while
// keeping the determinism contract (sample i is a pure function of the
// strategy and i, so every worker count produces the same report).

/// Like [`check_invariants`], but sampling-aware: a drawn schedule may
/// legitimately starve the drain loop past the step budget — that
/// sample is *truncated*, not a violation, so it must not be reported
/// as one.
fn check_sampled_invariants(out: &RunOutcome<(i64, i64, StatsSnapshot)>) -> Result<(), String> {
    match &out.result {
        Ok(v) => holds_invariants(v),
        Err(conch_runtime::error::RunError::StepLimitExceeded { .. }) => Ok(()),
        Err(e) => Err(format!("run failed: {e:?}")),
    }
}

fn sample_space(space: fn() -> Io<(i64, i64, StatsSnapshot)>, workers: usize) -> Report {
    let cfg = ExploreConfig {
        max_schedules: 128,
        max_depth: 512,
        step_budget: 100_000,
        strategy: Strategy::Pct {
            depth: 3,
            seed: 0xC0FFEE,
        },
        ..ExploreConfig::default()
    };
    let explorer = Explorer::with_config(cfg);
    let result = if workers == 1 {
        explorer.check(|| TestCase::new(space(), check_sampled_invariants))
    } else {
        explorer.check_parallel_exact(workers, move || {
            TestCase::new(space(), check_sampled_invariants)
        })
    };
    match result {
        conch_explore::CheckResult::Passed(report) => *report,
        conch_explore::CheckResult::Failed(f) => {
            panic!(
                "sampled fault space violated recovery invariants: {}",
                f.message
            )
        }
    }
}

#[test]
fn pct_sampling_covers_the_fault_spaces() {
    for space in [conn_fault_space, storm_space] {
        let report = sample_space(space, 1);
        assert!(
            !report.complete,
            "sampling must never claim exhaustive coverage: {report:?}"
        );
        assert_eq!(report.stats.sampled, 128, "{report:?}");
        assert_eq!(
            report.explored as u64, report.stats.sampled,
            "every draw is one explored run: {report:?}"
        );
        assert_eq!(report.pruned, 0, "sampling prunes nothing: {report:?}");
        assert!(
            report.stats.distinct_schedules > 0
                && report.stats.distinct_schedules <= report.stats.sampled,
            "{report:?}"
        );
        assert!(
            report.faults_injected > 0,
            "random priorities must still reach the fault arms: {report:?}"
        );
    }
}

#[test]
fn pct_sampling_reports_identically_at_any_worker_count() {
    let sequential = sample_space(conn_fault_space, 1);
    let parallel = sample_space(conn_fault_space, 4);
    assert_eq!(
        sequential, parallel,
        "sampled fault×schedule reports must be bit-identical across engines"
    );
}

fn check_actor_invariants(out: &RunOutcome<Vec<i64>>) -> Result<(), String> {
    match &out.result {
        Ok(v) => holds_actor_invariants(v),
        Err(e) => Err(format!("run failed: {e:?}")),
    }
}

fn explore_actor(workers: usize) -> Report {
    let cfg = ExploreConfig {
        max_schedules: 100_000,
        max_depth: 512,
        step_budget: 100_000,
        preemption_bound: Some(2),
        strategy: Strategy::Exhaustive(Reduction::Dpor),
        ..ExploreConfig::default()
    };
    let explorer = Explorer::with_config(cfg);
    let result = if workers == 1 {
        explorer.check(|| TestCase::new(actor_space(), check_actor_invariants))
    } else {
        explorer.check_parallel(workers, move || {
            TestCase::new(actor_space(), check_actor_invariants)
        })
    };
    result.report().clone()
}

#[test]
fn actor_space_holds_invariants_on_every_schedule() {
    let report = explore_actor(1);
    assert!(
        report.complete,
        "exploration must be exhaustive: {report:?}"
    );
    assert!(
        report.faults_injected > 0,
        "the crash/kill/wedge arms must be visited: {report:?}"
    );
    // Four episode arms, each with at least one schedule.
    assert!(report.explored >= 4, "{report:?}");
}

#[test]
fn actor_space_reports_identically_at_any_worker_count() {
    let sequential = explore_actor(1);
    let parallel = explore_actor(4);
    assert_eq!(
        sequential, parallel,
        "actor fault×schedule coverage must be bit-identical across engines"
    );
}

fn check_cross_shard_invariants(out: &RunOutcome<Vec<i64>>) -> Result<(), String> {
    match &out.result {
        Ok(v) => holds_cross_shard_invariants(v),
        Err(e) => Err(format!("run failed: {e:?}")),
    }
}

fn explore_cross_shard(workers: usize) -> Report {
    let cfg = ExploreConfig {
        max_schedules: 100_000,
        max_depth: 512,
        step_budget: 100_000,
        preemption_bound: Some(2),
        strategy: Strategy::Exhaustive(Reduction::Dpor),
        ..ExploreConfig::default()
    };
    let explorer = Explorer::with_config(cfg);
    let result = if workers == 1 {
        explorer.check(|| TestCase::new(cross_shard_kill_space(), check_cross_shard_invariants))
    } else {
        explorer.check_parallel(workers, move || {
            TestCase::new(cross_shard_kill_space(), check_cross_shard_invariants)
        })
    };
    result.report().clone()
}

#[test]
fn cross_shard_kill_space_holds_invariants_on_every_schedule() {
    let report = explore_cross_shard(1);
    assert!(
        report.complete,
        "exploration must be exhaustive: {report:?}"
    );
    // Three episode arms, each with at least one schedule: the no-kill
    // drain, the racing kill, and the stale kill to a dead slot.
    assert!(report.explored >= 3, "{report:?}");
}

#[test]
fn cross_shard_kill_space_reports_identically_at_any_worker_count() {
    let sequential = explore_cross_shard(1);
    let parallel = explore_cross_shard(4);
    assert_eq!(
        sequential, parallel,
        "cross-shard fault×schedule coverage must be bit-identical across engines"
    );
}
