//! Faulty clients: connections with pre-composed wire histories.
//!
//! The trick that keeps fault exploration tractable: the client does
//! not *run* concurrently with the server at all. Its entire wire
//! history — full request, truncated request, garbage, bare close — is
//! written into the connection's channels first (channel sends never
//! block, and the acceptor is still parked on an empty accept queue,
//! so no other thread is runnable and the writes introduce **zero
//! branch points**), and only then handed to the server with
//! [`Listener::inject`]. The explorer's work stays proportional to the
//! real nondeterminism: which fault was chosen, and how the server's
//! own threads interleave while serving it.

use conch_combinators::timeout;
use conch_httpd::client::{status_of, ClientOutcome};
use conch_httpd::net::{Connection, Listener};
use conch_runtime::io::Io;

use crate::fault::ConnFault;
use crate::inject::Injector;

/// A connection pre-loaded with `fault`'s wire history for `path`,
/// ready to [`inject`](Listener::inject).
pub fn prepared_connection(fault: ConnFault, path: &str) -> Io<Connection> {
    let (text, close) = fault.wire(path);
    Connection::open().and_then(move |conn| {
        let hang_up = if close { conn.close() } else { Io::unit() };
        conn.send_text(text).then(hang_up).map(move |_| conn)
    })
}

/// One client visit with an injector-chosen connection fault.
///
/// Composes the faulty connection, injects it, and waits up to
/// `response_budget` virtual µs for the server's answer. Returns the
/// observed HTTP status code, `-1` if no response arrived within the
/// budget (expected for [`ConnFault::Drop`] and
/// [`ConnFault::MidRequestClose`] — the server aborts those without
/// answering), or `-2` for an unparseable response.
///
/// The budget must exceed the server's read timeout for the
/// [`ConnFault::Stall`] arm to observe its 408.
pub fn faulty_client(l: Listener, inj: &Injector, path: String, response_budget: u64) -> Io<i64> {
    inj.conn_fault().and_then(move |fault| {
        prepared_connection(fault, &path).and_then(move |conn| {
            l.inject(conn)
                .then(timeout(response_budget, conn.read_response()))
                .map(|resp| match resp {
                    Some(text) => match status_of(&text) {
                        ClientOutcome::Status(code) => i64::from(code),
                        ClientOutcome::Garbled => -2,
                    },
                    None => -1,
                })
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_httpd::http::Response;
    use conch_httpd::server::{handler, start, Server, ServerConfig};
    use conch_runtime::prelude::*;

    fn visit(arm: u8) -> (i64, conch_httpd::server::StatsSnapshot) {
        let mut rt = Runtime::new();
        let cfg = ServerConfig {
            read_timeout: 1_000,
            handler_timeout: 10_000,
            ..ServerConfig::default()
        };
        let prog = Listener::bind().and_then(move |l| {
            start(l, handler(|_| Io::pure(Response::ok("hi"))), cfg).and_then(move |server| {
                let inj = Injector::scripted([arm]);
                faulty_client(l, &inj, "/x".into(), 50_000).and_then(move |code| {
                    server
                        .drain()
                        .then(server.shutdown())
                        .then(server.stats.snapshot())
                        .map(move |snap| (code, snap))
                })
            })
        });
        rt.run(prog).unwrap()
    }

    #[test]
    fn no_fault_arm_is_served() {
        let (code, snap) = visit(ConnFault::None.arm());
        assert_eq!(code, 200);
        assert_eq!(snap.served, 1);
        assert!(snap.conserved(), "counters must conserve: {snap:?}");
    }

    #[test]
    fn drop_arm_is_aborted_unanswered() {
        let (code, snap) = visit(ConnFault::Drop.arm());
        assert_eq!(code, -1, "a dropped connection gets no response");
        assert_eq!(snap.aborted, 1);
        assert!(snap.conserved(), "counters must conserve: {snap:?}");
    }

    #[test]
    fn stall_arm_times_out_with_408() {
        let (code, snap) = visit(ConnFault::Stall.arm());
        assert_eq!(code, 408);
        assert_eq!(snap.read_timeouts, 1);
        assert!(snap.conserved(), "counters must conserve: {snap:?}");
    }

    #[test]
    fn mid_request_close_arm_is_aborted() {
        let (code, snap) = visit(ConnFault::MidRequestClose.arm());
        assert_eq!(code, -1);
        assert_eq!(snap.aborted, 1);
        assert!(snap.conserved(), "counters must conserve: {snap:?}");
    }

    #[test]
    fn garbage_arm_is_rejected_with_400() {
        let (code, snap) = visit(ConnFault::Garbage.arm());
        assert_eq!(code, 400);
        assert_eq!(snap.parse_errors, 1);
        assert!(snap.conserved(), "counters must conserve: {snap:?}");
    }

    #[test]
    fn server_survives_every_fault_and_still_serves() {
        // One server, the whole menu in sequence, then a healthy probe:
        // the recovery invariant the explorer checks, here as a plain
        // deterministic run.
        let mut rt = Runtime::new();
        let cfg = ServerConfig {
            read_timeout: 1_000,
            handler_timeout: 10_000,
            ..ServerConfig::default()
        };
        let prog = Listener::bind().and_then(move |l| {
            start(l, handler(|_| Io::pure(Response::ok("hi"))), cfg).and_then(move |server| {
                let inj = Injector::scripted([1, 2, 3, 4]);
                fn visit_all(l: Listener, inj: Injector, left: u8, server: Server) -> Io<i64> {
                    if left == 0 {
                        // The healthy probe after the storm of faults.
                        return faulty_client(l, &Injector::quiet(), "/probe".into(), 50_000)
                            .and_then(move |code| {
                                server
                                    .drain()
                                    .then(server.shutdown())
                                    .then(server.stats.snapshot())
                                    .map(move |snap| {
                                        assert!(snap.conserved(), "{snap:?}");
                                        assert_eq!(snap.accepted, 5);
                                        code
                                    })
                            });
                    }
                    faulty_client(l, &inj.clone(), "/x".into(), 50_000)
                        .and_then(move |_| visit_all(l, inj, left - 1, server))
                }
                visit_all(l, inj, 4, server)
            })
        });
        assert_eq!(
            rt.run(prog).unwrap(),
            200,
            "post-fault probe must be served"
        );
    }
}
