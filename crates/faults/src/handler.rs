//! Handler faults: crashes and wedges injected around a real handler.

use conch_httpd::server::{handler, Handler};
use conch_runtime::exception::Exception;
use conch_runtime::io::Io;

use crate::fault::HandlerFault;
use crate::inject::Injector;

/// The exception an injected [`HandlerFault::Crash`] raises.
pub fn handler_crash() -> Exception {
    Exception::custom("InjectedHandlerCrash")
}

/// Wraps `inner` so every request first asks `inj` whether to fault.
///
/// * [`HandlerFault::None`] — the real handler runs untouched;
/// * [`HandlerFault::Crash`] — raises [`handler_crash`] synchronously
///   (the server's guard answers 500 and counts `handler_errors`);
/// * [`HandlerFault::Wedge`] — sleeps `wedge_sleep` virtual µs before
///   running the real handler. Pick `wedge_sleep` beyond the server's
///   handler timeout and the wedge becomes a 504; the sleep is bounded
///   so even an unsupervised run terminates.
pub fn faulty_handler(inj: Injector, wedge_sleep: u64, inner: Handler) -> Handler {
    handler(move |req| {
        let inner = std::rc::Rc::clone(&inner);
        inj.handler_fault().and_then(move |fault| match fault {
            HandlerFault::None => inner(req),
            HandlerFault::Crash => Io::throw(handler_crash()),
            HandlerFault::Wedge => Io::sleep(wedge_sleep).then(inner(req)),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::faulty_client;
    use conch_httpd::http::Response;
    use conch_httpd::net::Listener;
    use conch_httpd::server::{start, ServerConfig};
    use conch_runtime::prelude::*;

    fn visit_with_handler_arm(arm: u8) -> (i64, conch_httpd::server::StatsSnapshot) {
        let mut rt = Runtime::new();
        let cfg = ServerConfig {
            read_timeout: 1_000,
            handler_timeout: 5_000,
            ..ServerConfig::default()
        };
        let h = faulty_handler(
            Injector::scripted([arm]),
            20_000, // well past the 5ms handler budget
            handler(|_| Io::pure(Response::ok("hi"))),
        );
        let prog = Listener::bind().and_then(move |l| {
            start(l, h, cfg).and_then(move |server| {
                faulty_client(l, &Injector::quiet(), "/x".into(), 50_000).and_then(move |code| {
                    server
                        .drain()
                        .then(server.shutdown())
                        .then(server.stats.snapshot())
                        .map(move |snap| (code, snap))
                })
            })
        });
        rt.run(prog).unwrap()
    }

    #[test]
    fn no_fault_serves_normally() {
        let (code, snap) = visit_with_handler_arm(HandlerFault::None.arm());
        assert_eq!(code, 200);
        assert_eq!(snap.served, 1);
        assert!(snap.conserved(), "{snap:?}");
    }

    #[test]
    fn crash_becomes_500() {
        let (code, snap) = visit_with_handler_arm(HandlerFault::Crash.arm());
        assert_eq!(code, 500);
        assert_eq!(snap.handler_errors, 1);
        assert!(snap.conserved(), "{snap:?}");
    }

    #[test]
    fn wedge_becomes_504() {
        let (code, snap) = visit_with_handler_arm(HandlerFault::Wedge.arm());
        assert_eq!(code, 504);
        assert_eq!(snap.handler_timeouts, 1);
        assert!(snap.conserved(), "{snap:?}");
    }
}
