//! Exploring the labelled transition system.
//!
//! The rules of [`crate::rules`] define, for each state, the set of
//! enabled transitions. This module drives them three ways:
//!
//! * [`check_safety`] — bounded-exhaustive BFS (a model checker): visit
//!   every reachable state up to a budget, report a counterexample trace
//!   to any state satisfying a "bad" predicate. Used to *prove* the §5.1
//!   naive-locking race reachable and its `block`/`unblock` fix safe.
//! * [`admits_trace`] — directed search deciding whether an observable
//!   I/O trace (as recorded by the `conch-runtime` interpreter) is one
//!   the formal semantics admits. This is the conformance oracle.
//! * [`random_run`] — seeded random walks, for statistical testing.

use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::process::Soup;
use crate::rules::{enabled_transitions, Label, RuleConfig, RuleName, Transition};
use crate::term::{Term, TidName};

/// A program state under exploration: the process soup plus the remaining
/// (scripted) standard input.
#[derive(Debug, Clone)]
pub struct State {
    /// The process soup.
    pub soup: Soup,
    /// Characters standard input will still deliver.
    pub input: Vec<char>,
}

impl State {
    /// The initial state of `term` with scripted input.
    pub fn new(term: Rc<Term>, input: &str) -> State {
        State {
            soup: Soup::initial(term),
            input: input.chars().collect(),
        }
    }

    /// A canonical key for visited-state deduplication.
    pub fn key(&self) -> String {
        let mut k = self.soup.render();
        k.push('⊢');
        k.extend(self.input.iter());
        k
    }

    /// All successor states, with the transitions that produce them.
    pub fn successors(&self, config: &RuleConfig) -> Vec<(Transition, State)> {
        enabled_transitions(&self.soup, &self.input, config)
            .into_iter()
            .map(|t| {
                let input = if t.consumed_input {
                    self.input[1..].to_vec()
                } else {
                    self.input.clone()
                };
                let state = State {
                    soup: t.soup.clone(),
                    input,
                };
                (t, state)
            })
            .collect()
    }

    /// Has the program finished (main thread dead)?
    pub fn is_terminal(&self) -> bool {
        self.soup.is_terminal()
    }

    /// Is the program wedged: not finished, but no transition enabled?
    ///
    /// This is the semantics' picture of deadlock — e.g. every thread
    /// stuck on an `MVar` that nobody will ever fill.
    pub fn is_deadlocked(&self, config: &RuleConfig) -> bool {
        !self.is_terminal() && enabled_transitions(&self.soup, &self.input, config).is_empty()
    }
}

/// Budget for exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Stop after visiting this many distinct states.
    pub max_states: usize,
    /// Ignore paths longer than this many transitions.
    pub max_depth: usize,
    /// Rule-level configuration.
    pub rules: RuleConfig,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 200_000,
            max_depth: 10_000,
            rules: RuleConfig::default(),
        }
    }
}

/// One step of a counterexample trace.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The rule that fired.
    pub rule: RuleName,
    /// Its label.
    pub label: Label,
    /// The thread it fired in.
    pub tid: Option<TidName>,
    /// The state reached, rendered in the paper's notation.
    pub state: String,
}

/// The result of a safety check.
#[derive(Debug, Clone)]
pub enum CheckResult {
    /// No reachable state satisfies the bad predicate.
    Safe {
        /// Distinct states visited.
        states: usize,
        /// Whether the exploration was exhaustive (within bounds).
        complete: bool,
    },
    /// A bad state is reachable; here is how.
    Violation {
        /// The rule/label sequence from the initial state.
        trace: Vec<TraceStep>,
        /// The bad state, rendered.
        state: String,
        /// Distinct states visited before finding it.
        states: usize,
    },
}

impl CheckResult {
    /// True for [`CheckResult::Safe`].
    pub fn is_safe(&self) -> bool {
        matches!(self, CheckResult::Safe { .. })
    }
}

/// Bounded-exhaustive BFS over the transition system, checking a safety
/// property: returns a counterexample trace to the first state where
/// `bad` holds, or reports safety within the explored bound.
pub fn check_safety(
    init: &State,
    config: &ExploreConfig,
    bad: impl Fn(&State) -> bool,
) -> CheckResult {
    struct Edge {
        parent: String,
        rule: RuleName,
        label: Label,
        tid: Option<TidName>,
        state_render: String,
    }
    let mut visited: HashSet<String> = HashSet::new();
    let mut edges: HashMap<String, Edge> = HashMap::new();
    let mut queue: VecDeque<(State, usize)> = VecDeque::new();
    let init_key = init.key();
    visited.insert(init_key.clone());
    queue.push_back((init.clone(), 0));
    let mut complete = true;

    let rebuild_trace = |edges: &HashMap<String, Edge>, mut key: String| {
        let mut steps = Vec::new();
        while let Some(e) = edges.get(&key) {
            steps.push(TraceStep {
                rule: e.rule,
                label: e.label,
                tid: e.tid,
                state: e.state_render.clone(),
            });
            key = e.parent.clone();
        }
        steps.reverse();
        steps
    };

    if bad(init) {
        return CheckResult::Violation {
            trace: Vec::new(),
            state: init.soup.render(),
            states: 1,
        };
    }

    while let Some((state, depth)) = queue.pop_front() {
        if depth >= config.max_depth {
            complete = false;
            continue;
        }
        let key = state.key();
        for (t, next) in state.successors(&config.rules) {
            let nkey = next.key();
            if visited.contains(&nkey) {
                continue;
            }
            if visited.len() >= config.max_states {
                complete = false;
                continue;
            }
            visited.insert(nkey.clone());
            edges.insert(
                nkey.clone(),
                Edge {
                    parent: key.clone(),
                    rule: t.rule,
                    label: t.label,
                    tid: t.tid,
                    state_render: next.soup.render(),
                },
            );
            if bad(&next) {
                let states = visited.len();
                return CheckResult::Violation {
                    trace: rebuild_trace(&edges, nkey),
                    state: next.soup.render(),
                    states,
                };
            }
            queue.push_back((next, depth + 1));
        }
    }
    CheckResult::Safe {
        states: visited.len(),
        complete,
    }
}

/// An observable event for conformance checking: the `!c`/`?c` labels
/// (time labels are treated as internal — the runtime's virtual clock
/// partitions time differently than the per-sleep `$d` labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Obs {
    /// A character written.
    Put(char),
    /// A character read.
    Get(char),
}

/// Does the semantics admit the observable trace `w`, starting from
/// `init` and (if `require_termination`) ending in a terminal state?
///
/// Directed search with memoization on (state, position): internal
/// transitions (τ and `$d`) advance the state freely; `!c`/`?c` labels
/// must match the next event of `w`.
pub fn admits_trace(
    init: &State,
    w: &[Obs],
    require_termination: bool,
    config: &ExploreConfig,
) -> bool {
    let mut seen: HashSet<(String, usize)> = HashSet::new();
    let mut stack: Vec<(State, usize, usize)> = vec![(init.clone(), 0, 0)];
    while let Some((state, pos, depth)) = stack.pop() {
        if pos == w.len() && (!require_termination || state.is_terminal()) {
            return true;
        }
        if depth >= config.max_depth || seen.len() >= config.max_states {
            continue;
        }
        let key = (state.key(), pos);
        if !seen.insert(key) {
            continue;
        }
        for (t, next) in state.successors(&config.rules) {
            match t.label {
                Label::Tau | Label::Time(_) => stack.push((next, pos, depth + 1)),
                Label::Put(c) => {
                    if pos < w.len() && w[pos] == Obs::Put(c) {
                        stack.push((next, pos + 1, depth + 1));
                    }
                }
                Label::Get(c) => {
                    if pos < w.len() && w[pos] == Obs::Get(c) {
                        stack.push((next, pos + 1, depth + 1));
                    }
                }
            }
        }
    }
    false
}

/// The result of a random walk.
#[derive(Debug, Clone)]
pub struct RandomRun {
    /// The rules fired, in order, with labels.
    pub steps: Vec<(RuleName, Label)>,
    /// The final state.
    pub state: State,
    /// Whether the walk ended in a terminal state.
    pub terminated: bool,
    /// Whether the walk ended wedged (deadlock).
    pub deadlocked: bool,
}

/// Takes a uniformly random enabled transition at each step, up to
/// `max_steps`, with a seeded RNG (deterministic per seed).
pub fn random_run(init: &State, seed: u64, max_steps: usize, config: &RuleConfig) -> RandomRun {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = init.clone();
    let mut steps = Vec::new();
    for _ in 0..max_steps {
        if state.is_terminal() {
            break;
        }
        let succ = state.successors(config);
        if succ.is_empty() {
            return RandomRun {
                steps,
                terminated: false,
                deadlocked: true,
                state,
            };
        }
        let i = rng.gen_range(0..succ.len());
        let (t, next) = succ.into_iter().nth(i).expect("index in range");
        steps.push((t.rule, t.label));
        state = next;
    }
    let terminated = state.is_terminal();
    RandomRun {
        steps,
        terminated,
        deadlocked: false,
        state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::build::*;

    #[test]
    fn hello_terminates() {
        let prog = seq(put_char(ch('h')), put_char(ch('i')));
        let init = State::new(prog, "");
        let r = check_safety(&init, &ExploreConfig::default(), |_| false);
        match r {
            CheckResult::Safe { states, complete } => {
                assert!(complete);
                assert!(states > 2);
            }
            CheckResult::Violation { .. } => panic!("no bad predicate given"),
        }
    }

    #[test]
    fn admits_correct_trace() {
        let prog = seq(put_char(ch('h')), put_char(ch('i')));
        let init = State::new(prog, "");
        let cfg = ExploreConfig::default();
        assert!(admits_trace(
            &init,
            &[Obs::Put('h'), Obs::Put('i')],
            true,
            &cfg
        ));
        assert!(!admits_trace(
            &init,
            &[Obs::Put('i'), Obs::Put('h')],
            true,
            &cfg
        ));
        assert!(!admits_trace(&init, &[Obs::Put('h')], true, &cfg));
        // ...but 'h' alone is fine if termination is not required.
        assert!(admits_trace(&init, &[Obs::Put('h')], false, &cfg));
    }

    #[test]
    fn echo_program_traces() {
        // do { c <- getChar; putChar c }
        let prog = bind(get_char(), lam("c", put_char(var("c"))));
        let init = State::new(prog, "z");
        let cfg = ExploreConfig::default();
        assert!(admits_trace(
            &init,
            &[Obs::Get('z'), Obs::Put('z')],
            true,
            &cfg
        ));
        assert!(!admits_trace(&init, &[Obs::Put('z')], true, &cfg));
    }

    #[test]
    fn concurrent_puts_admit_both_orders() {
        // forkIO (putChar 'a') >> putChar 'b': both !a!b and !b!a legal.
        let prog = seq(fork(put_char(ch('a'))), put_char(ch('b')));
        let init = State::new(prog, "");
        let cfg = ExploreConfig::default();
        assert!(admits_trace(
            &init,
            &[Obs::Put('a'), Obs::Put('b')],
            true,
            &cfg
        ));
        assert!(admits_trace(
            &init,
            &[Obs::Put('b'), Obs::Put('a')],
            true,
            &cfg
        ));
        assert!(!admits_trace(
            &init,
            &[Obs::Put('a'), Obs::Put('a')],
            true,
            &cfg
        ));
        // The child's output may be lost if main finishes first: (Proc GC).
        assert!(admits_trace(&init, &[Obs::Put('b')], true, &cfg));
    }

    #[test]
    fn deadlock_detected() {
        let prog = bind(new_empty_mvar(), lam("m", take_mvar(var("m"))));
        let init = State::new(prog, "");
        let cfg = ExploreConfig::default();
        let r = check_safety(&init, &cfg, |s| s.is_deadlocked(&cfg.rules));
        match r {
            CheckResult::Violation { trace, .. } => {
                let rules: Vec<_> = trace.iter().map(|s| s.rule).collect();
                assert!(rules.contains(&RuleName::StuckTakeMVar));
            }
            CheckResult::Safe { .. } => panic!("expected a deadlock"),
        }
    }

    #[test]
    fn kill_thread_reaches_the_target() {
        // main forks a putChar-looper? Simpler: fork a sleeper, then
        // throwTo it; check a state is reachable where the child has an
        // exception at its redex.
        let prog = bind(
            fork(seq(sleep(int(5)), put_char(ch('L')))),
            lam(
                "t",
                seq(throw_to(var("t"), exc("KillThread")), put_char(ch('M'))),
            ),
        );
        let init = State::new(prog, "");
        let cfg = ExploreConfig::default();
        // Bad = the loser printed L *after* being killed is impossible to
        // state directly; instead: verify !M alone is admissible (child
        // killed before printing) AND !L!M, !M!L are admissible (child
        // won the race or interleaved).
        assert!(admits_trace(&init, &[Obs::Put('M')], true, &cfg));
        assert!(admits_trace(
            &init,
            &[Obs::Put('L'), Obs::Put('M')],
            true,
            &cfg
        ));
        assert!(admits_trace(
            &init,
            &[Obs::Put('M'), Obs::Put('L')],
            true,
            &cfg
        ));
    }

    #[test]
    fn random_run_is_deterministic_per_seed() {
        let prog = seq(
            fork(put_char(ch('a'))),
            seq(fork(put_char(ch('b'))), put_char(ch('c'))),
        );
        let mk = || State::new(prog.clone(), "");
        let cfg = RuleConfig::default();
        let r1 = random_run(&mk(), 99, 500, &cfg);
        let r2 = random_run(&mk(), 99, 500, &cfg);
        assert_eq!(r1.steps, r2.steps);
    }

    #[test]
    fn random_run_reports_deadlock() {
        let prog = bind(new_empty_mvar(), lam("m", take_mvar(var("m"))));
        let r = random_run(&State::new(prog, ""), 1, 100, &RuleConfig::default());
        assert!(r.deadlocked);
        assert!(!r.terminated);
    }

    #[test]
    fn masked_region_protects_against_kill() {
        // main: m <- newEmptyMVar; t <- fork child; throwTo t K; takeMVar m
        // child: (putChar 'x'; putChar 'y'; putMVar m ()), optionally
        // wrapped in block.
        //
        // Unprotected child: the kill can land between the puts and the
        // putMVar — main then waits forever: DEADLOCK REACHABLE.
        // Protected child: the child is masked from its very first step
        // (the fork body *is* the block), putChar is not interruptible
        // while runnable, so the child always completes: DEADLOCK
        // UNREACHABLE. This is E1's shape at the semantics level.
        let mk = |protect: bool| {
            let core = seq(
                put_char(ch('x')),
                seq(put_char(ch('y')), put_mvar(var("m"), unit())),
            );
            let child = if protect { block(core) } else { core };
            bind(
                new_empty_mvar(),
                lam(
                    "m",
                    bind(
                        fork(child),
                        lam("t", seq(throw_to(var("t"), exc("K")), take_mvar(var("m")))),
                    ),
                ),
            )
        };
        let cfg = ExploreConfig::default();

        let unprotected = State::new(mk(false), "");
        let r = check_safety(&unprotected, &cfg, |s| s.is_deadlocked(&cfg.rules));
        assert!(
            matches!(r, CheckResult::Violation { .. }),
            "unprotected child must be killable mid-sequence, deadlocking main"
        );

        let protected_ = State::new(mk(true), "");
        let r = check_safety(&protected_, &cfg, |s| s.is_deadlocked(&cfg.rules));
        match r {
            CheckResult::Safe { complete, .. } => assert!(complete),
            CheckResult::Violation { trace, state, .. } => {
                let rendered: Vec<_> = trace
                    .iter()
                    .map(|s| format!("{} {}", s.rule, s.state))
                    .collect();
                panic!("block failed to protect the child: {rendered:#?} -> {state}");
            }
        }
    }
}
