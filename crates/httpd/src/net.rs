//! The simulated network substrate.
//!
//! The paper's web-server case study ran on real sockets; here (per the
//! repro substitution in DESIGN.md) a [`Connection`] is a pair of `Chan`s
//! — request characters flowing to the server, response text flowing
//! back — and a [`Listener`] is a `Chan` of connections. Everything is
//! built from `MVar`s, so blocking accepts and reads are *interruptible
//! operations* in the §5.3 sense, which is precisely what lets the
//! server time them out.

use conch_combinators::Chan;
use conch_runtime::io::Io;
use conch_runtime::value::{FromValue, IntoValue, Value};

/// One simulated TCP connection.
///
/// The server reads request characters from `inbound` and writes the
/// rendered response to `outbound`; the client does the reverse.
#[derive(Debug, Clone, Copy)]
pub struct Connection {
    /// Client → server request characters.
    pub inbound: Chan<char>,
    /// Server → client response text (one message per response).
    pub outbound: Chan<String>,
}

impl Connection {
    /// Allocates a fresh connection (both channels empty).
    pub fn open() -> Io<Connection> {
        Chan::<char>::new().and_then(|inbound| {
            Chan::<String>::new().map(move |outbound| Connection { inbound, outbound })
        })
    }

    /// Client side: send raw request text, one character at a time.
    pub fn send_text(&self, text: impl Into<String>) -> Io<()> {
        let text: String = text.into();
        let inbound = self.inbound;
        let mut io = Io::unit();
        for c in text.chars().rev() {
            let rest = io;
            io = inbound.send(c).then(rest);
        }
        io
    }

    /// Client side: send text slowly — `gap` virtual microseconds between
    /// characters. This is the slowloris-style client the paper's
    /// timeouts defend against.
    pub fn send_text_slowly(&self, text: impl Into<String>, gap: u64) -> Io<()> {
        let chars: Vec<char> = text.into().chars().collect();
        let inbound = self.inbound;
        fn go(inbound: Chan<char>, mut chars: std::vec::IntoIter<char>, gap: u64) -> Io<()> {
            match chars.next() {
                None => Io::unit(),
                Some(c) => Io::sleep(gap)
                    .then(inbound.send(c))
                    .and_then(move |_| go(inbound, chars, gap)),
            }
        }
        go(inbound, chars.into_iter(), gap)
    }

    /// Client side: wait for the response text.
    pub fn read_response(&self) -> Io<String> {
        self.outbound.recv()
    }

    /// Server side: read request characters until the header-terminating
    /// blank line (`\r\n\r\n`), returning the accumulated text.
    pub fn read_request_text(&self) -> Io<String> {
        let inbound = self.inbound;
        fn go(inbound: Chan<char>, mut acc: String) -> Io<String> {
            inbound.recv().and_then(move |c| {
                acc.push(c);
                if acc.ends_with("\r\n\r\n") {
                    Io::pure(acc)
                } else {
                    go(inbound, acc)
                }
            })
        }
        go(inbound, String::new())
    }

    /// Server side: send the response text.
    pub fn send_response(&self, text: impl Into<String>) -> Io<()> {
        self.outbound.send(text.into())
    }
}

impl FromValue for Connection {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Pair(i, o) => Some(Connection {
                inbound: Chan::from_value(*i)?,
                outbound: Chan::from_value(*o)?,
            }),
            _ => None,
        }
    }
}

impl IntoValue for Connection {
    fn into_value(self) -> Value {
        Value::Pair(
            Box::new(self.inbound.into_value()),
            Box::new(self.outbound.into_value()),
        )
    }
}

/// The accept queue: clients push fresh connections, the server pops
/// them. Accepting blocks on an `MVar` inside the `Chan`, so it is
/// interruptible — a graceful shutdown simply `throwTo`s the acceptor.
#[derive(Debug, Clone, Copy)]
pub struct Listener {
    accept_queue: Chan<Connection>,
}

impl Listener {
    /// Creates a listener with an empty accept queue.
    pub fn bind() -> Io<Listener> {
        Chan::<Connection>::new().map(|accept_queue| Listener { accept_queue })
    }

    /// Client side: open a connection to this listener.
    pub fn connect(&self) -> Io<Connection> {
        let q = self.accept_queue;
        Connection::open().and_then(move |conn| q.send(conn).map(move |_| conn))
    }

    /// Server side: wait for the next connection.
    pub fn accept(&self) -> Io<Connection> {
        self.accept_queue.recv()
    }
}

impl FromValue for Listener {
    fn from_value(v: Value) -> Option<Self> {
        Some(Listener {
            accept_queue: Chan::from_value(v)?,
        })
    }
}

impl IntoValue for Listener {
    fn into_value(self) -> Value {
        self.accept_queue.into_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_combinators::timeout;
    use conch_runtime::prelude::*;

    #[test]
    fn request_text_round_trip() {
        let mut rt = Runtime::new();
        let prog = Connection::open().and_then(|c| {
            c.send_text("GET / HTTP/1.0\r\n\r\n")
                .then(c.read_request_text())
        });
        assert_eq!(rt.run(prog).unwrap(), "GET / HTTP/1.0\r\n\r\n");
    }

    #[test]
    fn response_round_trip() {
        let mut rt = Runtime::new();
        let prog = Connection::open().and_then(|c| {
            c.send_response("HTTP/1.0 200 OK\r\n\r\n")
                .then(c.read_response())
        });
        assert_eq!(rt.run(prog).unwrap(), "HTTP/1.0 200 OK\r\n\r\n");
    }

    #[test]
    fn slow_send_advances_clock() {
        let mut rt = Runtime::new();
        let prog = Connection::open().and_then(|c| {
            Io::fork(c.send_text_slowly("ab\r\n\r\n", 100)).then(c.read_request_text())
        });
        assert_eq!(rt.run(prog).unwrap(), "ab\r\n\r\n");
        assert!(rt.clock() >= 600);
    }

    #[test]
    fn reading_partial_request_can_time_out() {
        let mut rt = Runtime::new();
        // Client sends only half a request, then stalls forever.
        let prog = Connection::open().and_then(|c| {
            Io::fork(c.send_text("GET / HT")).then(timeout(1_000, c.read_request_text()))
        });
        assert_eq!(rt.run(prog).unwrap(), None);
    }

    #[test]
    fn listener_hands_out_connections() {
        let mut rt = Runtime::new();
        let prog = Listener::bind().and_then(|l| {
            // Client thread connects and sends; server accepts and reads.
            let client = l
                .connect()
                .and_then(|c| c.send_text("GET /a HTTP/1.0\r\n\r\n"));
            Io::fork(client)
                .then(l.accept())
                .and_then(|c| c.read_request_text())
        });
        assert_eq!(rt.run(prog).unwrap(), "GET /a HTTP/1.0\r\n\r\n");
    }

    #[test]
    fn accept_blocks_until_connect() {
        let mut rt = Runtime::new();
        let prog = Listener::bind().and_then(|l| {
            Io::fork(Io::sleep(50).then(l.connect().map(|_| ())))
                .then(l.accept())
                .map(|_| true)
        });
        assert!(rt.run(prog).unwrap());
        assert!(rt.clock() >= 50);
    }
}
