//! B9/X1 — schedule-exploration throughput and reduction
//! (`conch-explore`).
//!
//! Measures how fast the explorer enumerates the schedule space of the
//! B9 three-thread workload (two workers contending on one `MVar`,
//! plus a `throwTo` aimed at one of them), with and without a
//! preemption bound, sequentially and across worker threads — and how
//! much smaller dynamic partial-order reduction makes the explored set
//! on B9 and on the larger X1 workloads (5-thread log fan-in, 2-client
//! accept loop, 4-thread MVar pipeline with `throwTo` cancellation).
//!
//! Besides the timing output, writes `BENCH_explore.json` at the
//! workspace root with the headline numbers, for EXPERIMENTS.md.
//! Sequential rows carry `workers: 1`; parallel rows add a `speedup`
//! field (sequential seconds / this row's seconds — only meaningful
//! when the reported `cpus` exceeds the worker count, see
//! EXPERIMENTS.md for the overhead-crossover discussion). DPOR rows
//! add `races_detected`, `backtracks_installed`, `reduction_ratio`
//! (sleep-set explored / DPOR explored on the same workload),
//! `schedules_per_sec`, `wallclock_vs_sleep` (DPOR seconds / sleep-set
//! seconds on the same workload — CI asserts it stays at or below 1 on
//! the large workloads) and the `replay_seconds`/`analysis_seconds`
//! split of where the time went. The coverage counters are identical
//! in every row of a config — that is the parallel engine's
//! determinism contract, and CI asserts it.
//!
//! With `BENCH_SMOKE` set in the environment, the Criterion timing
//! loops are skipped and each configuration is explored exactly once to
//! produce the JSON — CI uses this to assert the exact explored/pruned/
//! complete counts without depending on machine speed.

use std::time::Instant;

use conch_bench::{
    accept_loop_workload, explore_fault_space, explore_once, explore_once_parallel,
    explore_reduced, log_fanin_workload, pct_sample_bug, pipeline_workload, SeededBug,
};
use conch_explore::{Reduction, Report};
use conch_runtime::io::Io;
use criterion::Criterion;

/// Worker counts for the parallel rows. 1 is included deliberately: it
/// runs the same work-stealing engine and must reproduce the
/// sequential row's counters and (near enough) its time.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_exploration");
    group.bench_function("three_thread_mvar_throwto", |b| {
        b.iter(|| explore_once(None))
    });
    group.bench_function("three_thread_mvar_throwto_pb2", |b| {
        b.iter(|| explore_once(Some(2)))
    });
    group.bench_function("three_thread_mvar_throwto_workers4", |b| {
        b.iter(|| explore_once_parallel(None, 4))
    });
    group.finish();
}

/// One JSON row for a DPOR exploration: the shared counters plus the
/// reduction telemetry (`races_detected`, `backtracks_installed`,
/// `reduction_ratio` vs the sleep-set baseline's explored count), the
/// throughput (`schedules_per_sec`), the wall-clock ratio against the
/// sleep-set baseline on the same workload (`wallclock_vs_sleep` =
/// DPOR seconds / sleep seconds — below 1.0 means DPOR is faster
/// end-to-end, the property CI asserts), and the split of where the
/// DPOR seconds went (`replay_seconds` executing schedules,
/// `analysis_seconds` in vector-clock race analysis).
fn dpor_row(
    config: &str,
    workers: usize,
    report: &Report,
    secs: f64,
    sleep_explored: usize,
    sleep_secs: f64,
) -> String {
    format!(
        concat!(
            "    {{\"config\": \"{}\", \"workers\": {}, \"explored\": {}, ",
            "\"pruned\": {}, \"truncated\": {}, \"complete\": {}, ",
            "\"seconds\": {:.6}, \"schedules_per_sec\": {:.1}, ",
            "\"races_detected\": {}, ",
            "\"backtracks_installed\": {}, \"reduction_ratio\": {:.2}, ",
            "\"wallclock_vs_sleep\": {:.3}, \"replay_seconds\": {:.6}, ",
            "\"analysis_seconds\": {:.6}}}"
        ),
        config,
        workers,
        report.explored,
        report.pruned,
        report.truncated,
        report.complete,
        secs,
        report.explored as f64 / secs.max(1e-9),
        report.stats.races_detected,
        report.stats.backtracks_installed,
        sleep_explored as f64 / report.explored.max(1) as f64,
        secs / sleep_secs.max(1e-9),
        report.timing.replay_seconds,
        report.timing.analysis_seconds,
    )
}

/// Two rows for one large workload: the sleep-set baseline and the
/// DPOR exploration of the same program, the latter carrying the
/// reduction telemetry.
fn large_workload_rows<G>(rows: &mut Vec<String>, config: &str, workload: G)
where
    G: Fn() -> Io<i64> + Sync + Copy,
{
    let start = Instant::now();
    let sleep = explore_reduced(Reduction::SleepSets, None, 1, workload);
    let sleep_secs = start.elapsed().as_secs_f64();
    rows.push(format!(
        concat!(
            "    {{\"config\": \"{}_sleep\", \"workers\": 1, \"explored\": {}, ",
            "\"pruned\": {}, \"truncated\": {}, \"complete\": {}, ",
            "\"seconds\": {:.6}, \"schedules_per_sec\": {:.1}}}"
        ),
        config,
        sleep.explored,
        sleep.pruned,
        sleep.truncated,
        sleep.complete,
        sleep_secs,
        sleep.explored as f64 / sleep_secs.max(1e-9),
    ));
    let start = Instant::now();
    let dpor = explore_reduced(Reduction::Dpor, None, 1, workload);
    let dpor_secs = start.elapsed().as_secs_f64();
    rows.push(dpor_row(
        &format!("{config}_dpor"),
        1,
        &dpor,
        dpor_secs,
        sleep.explored,
        sleep_secs,
    ));
}

/// One measured exploration per configuration, written as a small JSON
/// report next to the workspace `Cargo.toml`.
fn emit_json() {
    let mut rows = Vec::new();
    let mut sequential_unbounded_secs = None;
    for (name, bound) in [
        ("unbounded", None),
        ("preemption_bound_2", Some(2)),
        ("preemption_bound_0", Some(0)),
    ] {
        let start = Instant::now();
        let report = explore_once(bound);
        let secs = start.elapsed().as_secs_f64();
        if bound.is_none() {
            sequential_unbounded_secs = Some(secs);
        }
        let per_sec = report.explored as f64 / secs.max(1e-9);
        let denominator = (report.explored + report.pruned).max(1);
        let pruning_ratio = report.pruned as f64 / denominator as f64;
        rows.push(format!(
            concat!(
                "    {{\"config\": \"{}\", \"workers\": 1, \"explored\": {}, ",
                "\"pruned\": {}, \"truncated\": {}, \"complete\": {}, ",
                "\"seconds\": {:.6}, \"schedules_per_sec\": {:.1}, ",
                "\"pruning_ratio\": {:.4}}}"
            ),
            name,
            report.explored,
            report.pruned,
            report.truncated,
            report.complete,
            secs,
            per_sec,
            pruning_ratio,
        ));
    }
    // Parallel rows: same unbounded config through the work-stealing
    // engine at several worker counts. Counters must match the
    // sequential row exactly; `speedup` is relative to it.
    let base_secs = sequential_unbounded_secs.expect("unbounded row ran");
    for workers in WORKER_COUNTS {
        let start = Instant::now();
        let report = explore_once_parallel(None, workers);
        let secs = start.elapsed().as_secs_f64();
        let per_sec = report.explored as f64 / secs.max(1e-9);
        rows.push(format!(
            concat!(
                "    {{\"config\": \"unbounded_parallel\", \"workers\": {}, ",
                "\"explored\": {}, \"pruned\": {}, \"truncated\": {}, ",
                "\"complete\": {}, \"seconds\": {:.6}, ",
                "\"schedules_per_sec\": {:.1}, \"speedup\": {:.2}}}"
            ),
            workers,
            report.explored,
            report.pruned,
            report.truncated,
            report.complete,
            secs,
            per_sec,
            base_secs / secs.max(1e-9),
        ));
    }
    // DPOR rows: the same B9 workload under Reduction::Dpor,
    // sequentially and at 4 workers (whose counters must match the
    // sequential DPOR row bit for bit — CI asserts it).
    let (sleep_explored, b9_sleep_secs) = {
        let start = Instant::now();
        let report = explore_once(None);
        (report.explored, start.elapsed().as_secs_f64())
    };
    for (config, workers) in [("dpor", 1), ("dpor_parallel", 4)] {
        let start = Instant::now();
        let report = explore_reduced(
            Reduction::Dpor,
            None,
            workers,
            conch_bench::explore_workload,
        );
        let secs = start.elapsed().as_secs_f64();
        rows.push(dpor_row(
            config,
            workers,
            &report,
            secs,
            sleep_explored,
            b9_sleep_secs,
        ));
    }

    // X2: the fault × schedule spaces — an httpd server under
    // Injector::Explore, so every injection site (connection fault arm,
    // storm strike) is a branch point the explorer enumerates alongside
    // the scheduling decisions. Each space is explored sequentially and
    // at 4 workers; every row must be complete with faults_injected > 0,
    // and the two rows of a space must carry identical counters — CI
    // asserts all of it. The recovery invariants (healthy probe answered
    // 200, no leaked workers or connections, counters conserved) are
    // checked on every schedule inside explore_fault_space.
    for (config, space) in [
        (
            "conn_faults",
            conch_faults::spaces::conn_fault_space as fn() -> Io<_>,
        ),
        (
            "kill_storm",
            conch_faults::spaces::storm_space as fn() -> Io<_>,
        ),
        (
            "supervised_pool",
            conch_faults::spaces::supervised_pool_space as fn() -> Io<_>,
        ),
    ] {
        for workers in [1, 4] {
            let start = Instant::now();
            let report = explore_fault_space(space, workers);
            let secs = start.elapsed().as_secs_f64();
            rows.push(format!(
                concat!(
                    "    {{\"config\": \"{}\", \"workers\": {}, \"explored\": {}, ",
                    "\"pruned\": {}, \"truncated\": {}, \"complete\": {}, ",
                    "\"seconds\": {:.6}, \"faults_injected\": {}}}"
                ),
                config,
                workers,
                report.explored,
                report.pruned,
                report.truncated,
                report.complete,
                secs,
                report.faults_injected,
            ));
        }
    }

    // X3: the actor-ring workload (3 relay actors, 2 laps) from
    // `conch-actors`, explored under the same DPOR + preemption-bound-2
    // configuration as the fault spaces, sequentially and at 4 workers.
    // The token invariant (result == actors * laps) is checked on every
    // schedule inside explore_actor_ring; the two rows must carry
    // identical counters — CI asserts it.
    for workers in [1, 4] {
        let start = Instant::now();
        let report = conch_bench::explore_actor_ring(workers);
        let secs = start.elapsed().as_secs_f64();
        rows.push(format!(
            concat!(
                "    {{\"config\": \"actor_ring\", \"workers\": {}, \"explored\": {}, ",
                "\"pruned\": {}, \"truncated\": {}, \"complete\": {}, ",
                "\"seconds\": {:.6}}}"
            ),
            workers, report.explored, report.pruned, report.truncated, report.complete, secs,
        ));
    }

    // X4: PCT sampling against the known-seeded corpus bugs — 256
    // draws at depth 3, seed 0xC0FFEE, sequentially and at 4 workers.
    // `samples_to_first_bug` is the 0-based index of the earliest
    // failing draw (JSON null if the budget never hit the bug — CI
    // asserts it never is), and every counter must be bit-identical
    // across worker counts: a sample's schedule is a pure function of
    // its index, and workers drain the whole budget.
    for (config, bug) in [
        ("pct_output_race", SeededBug::OutputRace),
        ("pct_broken_bracket", SeededBug::BrokenBracket),
    ] {
        for workers in [1, 4] {
            let start = Instant::now();
            let (report, first) = pct_sample_bug(bug, workers, 256, 0xC0FFEE);
            let secs = start.elapsed().as_secs_f64();
            rows.push(format!(
                concat!(
                    "    {{\"config\": \"{}\", \"workers\": {}, \"samples\": {}, ",
                    "\"distinct_schedules\": {}, \"bugs_found\": {}, ",
                    "\"samples_to_first_bug\": {}, \"seconds\": {:.6}, ",
                    "\"samples_per_sec\": {:.1}}}"
                ),
                config,
                workers,
                report.stats.sampled,
                report.stats.distinct_schedules,
                u64::from(first.is_some()),
                first.map_or("null".to_owned(), |i| i.to_string()),
                secs,
                report.stats.sampled as f64 / secs.max(1e-9),
            ));
        }
    }

    // X1: the larger workloads, each explored under sleep sets and
    // under DPOR. The pipeline's sleep-set side caps out at the 2M
    // schedule limit (complete=false) — its reduction ratio is a lower
    // bound; DPOR is what makes the workload tractable at all.
    large_workload_rows(&mut rows, "log_fanin_5threads", || log_fanin_workload(4, 4));
    large_workload_rows(&mut rows, "accept_loop_2clients", || {
        accept_loop_workload(2)
    });
    large_workload_rows(&mut rows, "pipeline_3stages", || pipeline_workload(3));

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"schedule_exploration\",\n  \"workload\": \
         \"3 threads, 1 MVar, 1 throwTo\",\n  \"cpus\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        cpus,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    if std::env::var_os("BENCH_SMOKE").is_none() {
        let mut criterion = Criterion::default();
        bench_exploration(&mut criterion);
    }
    emit_json();
}
