//! Quickstart: the paper's primitives in five minutes.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Walks through: forking threads and MVars (§4), killing a thread with
//! `throwTo` (§5), protecting a critical section with `block`/`unblock`
//! (§5.2), the interruptible `takeMVar` (§5.3), and the library
//! combinators `finally` and `timeout` (§7).

use conch::prelude::*;
use conch_combinators::finally;

fn main() {
    forking_and_mvars();
    killing_a_thread();
    masking_a_critical_section();
    finally_always_runs();
    timeouts_compose();
}

/// §4: fork a child, meet in the middle via an MVar.
fn forking_and_mvars() {
    let mut rt = Runtime::new();
    let prog = Io::new_empty_mvar::<String>().and_then(|inbox| {
        Io::fork(Io::sleep(100).then(inbox.put("hello from the child".into()))).then(inbox.take())
    });
    let msg = rt.run(prog).unwrap();
    println!("[forking]   child said: {msg}");
}

/// §5: `throwTo` interrupts a thread blocked forever on an empty MVar.
fn killing_a_thread() {
    let mut rt = Runtime::new();
    let prog = Io::new_empty_mvar::<i64>().and_then(|hole| {
        Io::new_empty_mvar::<String>().and_then(move |report| {
            let child = hole
                .take() // blocks forever — nobody will ever put
                .map(|_| "got a value?!".to_owned())
                .catch(|e| Io::pure(format!("killed by {e}")))
                .and_then(move |s| report.put(s));
            Io::fork(child)
                .and_then(move |tid| Io::sleep(50).then(kill_thread(tid)).then(report.take()))
        })
    });
    let fate = rt.run(prog).unwrap();
    println!("[throwTo]   blocked child: {fate}");
}

/// §5.2: a masked update always completes; the exception waits.
fn masking_a_critical_section() {
    let mut rt = Runtime::new();
    let prog = Io::new_mvar(100_i64).and_then(|account| {
        // The worker is forked masked (block around the fork), does a
        // protected withdrawal, then opens a window.
        let worker = modify_mvar(account, |balance| {
            Io::compute(1_000) // a long critical section
                .then(Io::pure(balance - 30))
        })
        .catch(|_| Io::unit());
        Io::<ThreadId>::block(Io::fork(worker)).and_then(move |tid| {
            Io::throw_to(tid, Exception::kill_thread())
                .then(Io::sleep(1_000))
                .then(account.take())
        })
    });
    let balance = rt.run(prog).unwrap();
    // Either the kill landed before the takeMVar (no withdrawal) or the
    // protected section completed (withdrawal applied) — never a lost
    // lock, never a half-applied update.
    println!("[block]     final balance: {balance} (100 = aborted cleanly, 70 = completed)");
    assert!(balance == 100 || balance == 70);
}

/// §7.1: `finally` runs its finalizer on every exit path.
fn finally_always_runs() {
    let mut rt = Runtime::new();
    let prog = Io::new_mvar(0_i64).and_then(|cleanups| {
        let failing = Io::<i64>::throw(Exception::error_call("disk on fire"));
        finally(failing, move || modify_mvar(cleanups, |n| Io::pure(n + 1))).catch(move |e| {
            Io::effect(move || println!("[finally]   caught: {e}")).then(cleanups.take())
        })
    });
    let cleanups_run = rt.run(prog).unwrap();
    println!("[finally]   finalizers run: {cleanups_run}");
    assert_eq!(cleanups_run, 1);
}

/// §7.3: timeouts nest without interfering — no Timeout exception exists
/// for the inner code to intercept.
fn timeouts_compose() {
    let mut rt = Runtime::new();
    let slow_io = Io::sleep(5_000).map(|_| 42_i64);
    let prog = timeout(1_000_000, timeout(100, slow_io));
    let result = rt.run(prog).unwrap();
    println!("[timeout]   nested result: {result:?} (inner fired, outer intact)");
    assert_eq!(result, Some(None));
    println!("[timeout]   virtual time elapsed: {}µs", rt.clock());
}
