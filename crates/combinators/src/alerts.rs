//! The §9 "exceptions vs alerts" design alternative.
//!
//! §9 observes that sequential code written without asynchronous
//! exceptions in mind can break the combinators: `e `catch` \_ -> e'`
//! intercepts *any* exception — including a `KillThread` aimed at it by
//! `timeout`'s machinery. The paper sketches a fix: "define two
//! datatypes, exceptions and alerts, with a distinct catch operator for
//! each type".
//!
//! This module implements that alternative as a library, using the
//! runtime's [`RaiseOrigin`] to distinguish the two kinds at the moment
//! of raising:
//!
//! * [`catch_sync`] — handles only *synchronous* exceptions (the
//!   "exceptions" datatype): a universal `catch_sync` handler in
//!   sequential code can never swallow an interruption.
//! * [`catch_alert`] — handles only *asynchronous* exceptions (the
//!   "alerts" datatype): cleanup-and-die handlers that must not trigger
//!   on the code's own failures.
//!
//! Both pass the non-matching kind through with its origin intact
//! ([`Io::rethrow`]), so nested handlers still see the truth.

use conch_runtime::exception::Exception;
use conch_runtime::io::Io;
use conch_runtime::RaiseOrigin;

/// `catch` restricted to synchronous exceptions: asynchronous ones pass
/// through unhandled (with their origin preserved).
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_combinators::catch_sync;
///
/// let mut rt = Runtime::new();
/// // A universal sync handler still lets the program's own throw be
/// // handled …
/// let prog = catch_sync(
///     Io::<i64>::throw(Exception::error_call("mine")),
///     |_| Io::pure(1),
/// );
/// assert_eq!(rt.run(prog).unwrap(), 1);
/// ```
pub fn catch_sync<T, H>(action: Io<T>, handler: H) -> Io<T>
where
    T: 'static,
    H: FnOnce(Exception) -> Io<T> + 'static,
{
    action.catch_info(move |e, origin| match origin {
        RaiseOrigin::Sync => handler(e),
        RaiseOrigin::Async => Io::rethrow(e, origin),
    })
}

/// `catch` restricted to asynchronous exceptions (alerts): the code's
/// own synchronous failures pass through unhandled.
pub fn catch_alert<T, H>(action: Io<T>, handler: H) -> Io<T>
where
    T: 'static,
    H: FnOnce(Exception) -> Io<T> + 'static,
{
    action.catch_info(move |e, origin| match origin {
        RaiseOrigin::Async => handler(e),
        RaiseOrigin::Sync => Io::rethrow(e, origin),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{race, timeout, Either};
    use conch_runtime::prelude::*;

    #[test]
    fn catch_sync_handles_own_throw() {
        let mut rt = Runtime::new();
        let prog = catch_sync(Io::<i64>::throw(Exception::error_call("x")), |_| {
            Io::pure(7)
        });
        assert_eq!(rt.run(prog).unwrap(), 7);
    }

    #[test]
    fn catch_sync_passes_async_through() {
        let mut rt = Runtime::new();
        // The victim wraps everything in a universal catch_sync; the kill
        // must still get through and terminate it.
        let prog = Io::new_empty_mvar::<String>().and_then(|out| {
            let victim = catch_sync(
                Io::<()>::unblock(Io::compute(1_000_000)),
                |_| Io::unit(), // would swallow, if it could
            )
            .map(|_| "survived".to_owned())
            .catch(|e| Io::pure(format!("killed by {e}")))
            .and_then(move |s| out.put(s));
            Io::<ThreadId>::block(Io::fork(victim))
                .and_then(move |v| Io::throw_to(v, Exception::kill_thread()).then(out.take()))
        });
        assert_eq!(rt.run(prog).unwrap(), "killed by KillThread");
    }

    #[test]
    fn catch_alert_handles_kill_only() {
        let mut rt = Runtime::new();
        // Synchronous failure passes through catch_alert…
        let prog = catch_alert(Io::<i64>::throw(Exception::error_call("own bug")), |_| {
            Io::pure(0)
        })
        .catch(|e| {
            assert_eq!(e, Exception::error_call("own bug"));
            Io::pure(1)
        });
        assert_eq!(rt.run(prog).unwrap(), 1);
    }

    #[test]
    fn catch_alert_sees_interruptions() {
        let mut rt = Runtime::new();
        let prog = Io::new_empty_mvar::<String>().and_then(|out| {
            let victim = catch_alert(
                Io::<()>::unblock(Io::compute(1_000_000)).map(|_| "done".to_owned()),
                |e| Io::pure(format!("alert: {e}")),
            )
            .and_then(move |s| out.put(s));
            Io::<ThreadId>::block(Io::fork(victim))
                .and_then(move |v| Io::throw_to(v, Exception::custom("Shutdown")).then(out.take()))
        });
        assert_eq!(rt.run(prog).unwrap(), "alert: Shutdown");
    }

    #[test]
    fn universal_catch_breaks_timeout_but_catch_sync_does_not() {
        // The §9 scenario: "sequential code that was written without
        // thought of asynchronous exceptions may break assumptions of
        // our combinators". A loop with a universal resurrect-on-error
        // handler swallows the KillThread that `timeout`'s race sends to
        // the loser and lives on as a zombie. The same loop written with
        // `catch_sync` resurrects on its own failures only, so the
        // combinator can still kill it.
        use conch_runtime::mvar::MVar;

        fn bump_forever(c: MVar<i64>) -> Io<i64> {
            Io::sleep(5)
                .then(crate::modify_mvar(c, |n| Io::pure(n + 1)))
                .and_then(move |_| bump_forever(c))
        }
        fn zombie(c: MVar<i64>) -> Io<i64> {
            // Universal handler: resurrects on *anything*, including the
            // combinator's KillThread.
            bump_forever(c).catch(move |_| zombie(c))
        }
        fn disciplined(c: MVar<i64>) -> Io<i64> {
            // Sync-only handler: resurrects on its own failures, lets
            // asynchronous interruptions through.
            catch_sync(bump_forever(c), move |_| disciplined(c))
        }

        let survives_timeout = |loop_of: fn(MVar<i64>) -> Io<i64>| {
            let mut rt = Runtime::new();
            let prog = Io::new_mvar(0_i64).and_then(move |c| {
                timeout(50, loop_of(c)).and_then(move |_| {
                    Io::sleep(500)
                        .then(crate::with_mvar(c, Io::pure))
                        .and_then(move |before| {
                            Io::sleep(500)
                                .then(crate::with_mvar(c, Io::pure))
                                .map(move |after| after > before)
                        })
                })
            });
            rt.run(prog).unwrap()
        };

        assert!(
            survives_timeout(zombie),
            "the universal catch must shield the loop from the kill"
        );
        assert!(
            !survives_timeout(disciplined),
            "catch_sync must let the combinator's kill through"
        );
    }

    #[test]
    fn race_with_alert_aware_children() {
        let mut rt = Runtime::new();
        // Children that use catch_sync internally still lose races
        // cleanly.
        let a = catch_sync(Io::sleep(10).map(|_| 1_i64), |_| Io::pure(-1));
        let b = catch_sync(Io::sleep(500).map(|_| 2_i64), |_| Io::pure(-2));
        let prog = race(a, b);
        assert_eq!(rt.run(prog).unwrap(), Either::Left(1));
    }
}
