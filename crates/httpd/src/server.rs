//! The fault-tolerant server proper (§11, after \[8\]).
//!
//! Per connection the server makes "heavy use of time-outs,
//! multithreading and exceptions", all via the paper's combinators:
//!
//! * `forkIO` per connection;
//! * [`timeout`] on reading the request (defeats stalled clients) and on
//!   running the handler (defeats slow handlers) — composable because
//!   timeouts carry no exception (§7.3);
//! * `catch` around the handler, turning crashes into `500`s;
//! * graceful shutdown by `throwTo KillThread` at the acceptor — safe
//!   because a blocked `accept` is an interruptible operation (§5.3).
//!
//! The counters live in a **single** `MVar` cell updated with the §7.4
//! masked pattern (no `unblock`), so every bookkeeping step — accepting,
//! shedding, recording an outcome together with the active decrement —
//! is one all-or-nothing transaction. The schedule explorer found the
//! alternative (one `MVar` per counter, `modify_mvar`-style updates)
//! unsound three different ways: `with_mvar`'s internal `unblock`
//! re-opens delivery inside the acceptor's masked section, two cells can
//! never be bumped atomically, and a snapshot read across ten cells
//! tears. With one cell, a `KillThread` can land only while the `take`
//! is still *blocked* — before anything was taken, so nothing is torn.

use std::rc::Rc;

use conch_combinators::{kill_thread, modify_mvar_masked, timeout};
use conch_runtime::exception::Exception;
use conch_runtime::ids::ThreadId;
use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::value::{FromValue, IntoValue, Value};

use crate::http::{parse_request, Request, Response};
use crate::net::{Connection, Listener};

/// A request handler: maps a request to an `Io` action producing a
/// response. Shared across connections, hence `Rc<dyn Fn…>`.
pub type Handler = Rc<dyn Fn(Request) -> Io<Response>>;

/// Wraps a plain closure as a [`Handler`].
pub fn handler(f: impl Fn(Request) -> Io<Response> + 'static) -> Handler {
    Rc::new(f)
}

/// Server tuning knobs (virtual microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Budget for receiving the complete request.
    pub read_timeout: u64,
    /// Budget for the handler to produce a response.
    pub handler_timeout: u64,
    /// Load-shedding threshold: when this many connections are already
    /// active, new connections are answered `503` + `Retry-After`
    /// instead of getting a worker.
    pub max_active: i64,
    /// The `Retry-After` hint (virtual seconds) on shed responses.
    pub retry_after: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: 10_000,
            handler_timeout: 50_000,
            max_active: 64,
            retry_after: 1,
        }
    }
}

/// Per-server counters, held in a **single** `MVar` cell — one
/// transactional unit, updated with the §7.4 masked pattern.
///
/// The design is forced by asynchronous exceptions. Splitting the
/// counters over separate `MVar`s makes the conservation law
/// (`accepted == outcomes` once quiesced) unenforceable: two cells can
/// never change atomically, so a `KillThread` aimed at the acceptor or
/// a worker can always land *between* two bumps and strand an accepted
/// connection without an outcome. And the general-purpose update
/// combinators (`modify_mvar`, `with_mvar`) deliberately `unblock`
/// around the user computation — correct for arbitrary user code, but a
/// genuine delivery window when the caller thought it was masked. The
/// schedule explorer exhibited concrete interleavings for both failure
/// modes (see `shutdown_sync` and the `conch-faults` test-suite docs).
///
/// One cell fixes both: the whole snapshot is taken, mutated by pure
/// Rust code, and put back, fully masked. The only interruptible point
/// is the `take` while it *blocks* — at which moment nothing has been
/// taken and nothing can tear.
#[derive(Debug, Clone, Copy)]
pub struct ServerStats {
    cell: MVar<StatsSnapshot>,
}

/// The counters themselves — both the live state inside the
/// [`ServerStats`] cell and the value returned by an atomic
/// [`snapshot`](ServerStats::snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests answered with the handler's response.
    pub served: i64,
    /// Requests whose read phase timed out (answered 408).
    pub read_timeouts: i64,
    /// Requests whose handler timed out (answered 504).
    pub handler_timeouts: i64,
    /// Requests whose handler raised (answered 500).
    pub handler_errors: i64,
    /// Requests that failed to parse (answered 400).
    pub parse_errors: i64,
    /// Connections currently being handled.
    pub active: i64,
    /// Connections taken off the accept queue — the left-hand side of
    /// the conservation law: every accepted connection ends up in
    /// exactly one of `served`, `read_timeouts`, `handler_timeouts`,
    /// `handler_errors`, `parse_errors`, `aborted`, `killed` or `shed`.
    pub accepted: i64,
    /// Connections the peer closed mid-request (no response sent).
    pub aborted: i64,
    /// Workers terminated by an asynchronous exception (e.g. a
    /// `KillThread` storm) before recording any other outcome.
    pub killed: i64,
    /// Connections answered `503` by the load shedder.
    pub shed: i64,
}

impl StatsSnapshot {
    /// The sum of all terminal-outcome counters. Conservation means
    /// this equals [`accepted`](Self::accepted) whenever no connection
    /// is in flight (`active == 0`).
    pub fn outcomes(&self) -> i64 {
        self.served
            + self.read_timeouts
            + self.handler_timeouts
            + self.handler_errors
            + self.parse_errors
            + self.aborted
            + self.killed
            + self.shed
    }

    /// Checks the conservation law for a quiesced server: every
    /// accepted connection recorded exactly one outcome.
    pub fn conserved(&self) -> bool {
        self.active == 0 && self.outcomes() == self.accepted
    }

    /// Field-wise sum, for aggregating per-shard cells. The aggregate
    /// of quiescent shards obeys the same conservation law as a single
    /// cell: sums of `accepted` and of outcomes match when each shard's
    /// do (see the sharded-stats protocol in `crate::shard`).
    pub fn merge(mut self, other: &StatsSnapshot) -> StatsSnapshot {
        self.served += other.served;
        self.read_timeouts += other.read_timeouts;
        self.handler_timeouts += other.handler_timeouts;
        self.handler_errors += other.handler_errors;
        self.parse_errors += other.parse_errors;
        self.active += other.active;
        self.accepted += other.accepted;
        self.aborted += other.aborted;
        self.killed += other.killed;
        self.shed += other.shed;
        self
    }
}

impl ServerStats {
    pub(crate) fn new() -> Io<ServerStats> {
        Io::new_mvar(StatsSnapshot::default()).map(|cell| ServerStats { cell })
    }

    /// Reads all counters in one atomic, masked transaction — a
    /// snapshot can never observe a half-committed update.
    pub fn snapshot(&self) -> Io<StatsSnapshot> {
        let cell = self.cell;
        Io::block(cell.take().and_then(move |s| cell.put(s).map(move |_| s)))
    }

    /// One §7.4 masked transaction over the counters: take, mutate with
    /// pure code, put back. No `unblock` anywhere, so once the `take`
    /// returns the commit is certain — the `put` back into the
    /// now-empty cell cannot block, and a masked thread is only ever
    /// interrupted at *blocking* operations. An asynchronous exception
    /// therefore either lands while the `take` still waits (nothing
    /// taken, nothing changed) or after the transaction is whole.
    pub(crate) fn txn<R, F>(&self, f: F) -> Io<R>
    where
        R: FromValue + IntoValue + Copy + 'static,
        F: FnOnce(&mut StatsSnapshot) -> R + 'static,
    {
        let cell = self.cell;
        Io::block(cell.take().and_then(move |mut s| {
            let r = f(&mut s);
            cell.put(s).map(move |_| r)
        }))
    }
}

/// The terminal outcome of one accepted connection — exactly one of
/// these is recorded per accept, in the same transaction that lowers
/// the active count ([`finish`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Outcome {
    Served,
    ReadTimeout,
    HandlerTimeout,
    HandlerError,
    ParseError,
    Aborted,
    Killed,
}

impl Outcome {
    fn record(self, s: &mut StatsSnapshot) {
        match self {
            Outcome::Served => s.served += 1,
            Outcome::ReadTimeout => s.read_timeouts += 1,
            Outcome::HandlerTimeout => s.handler_timeouts += 1,
            Outcome::HandlerError => s.handler_errors += 1,
            Outcome::ParseError => s.parse_errors += 1,
            Outcome::Aborted => s.aborted += 1,
            Outcome::Killed => s.killed += 1,
        }
    }
}

impl IntoValue for Outcome {
    fn into_value(self) -> Value {
        Value::Int(self as i64)
    }
}

impl FromValue for Outcome {
    fn from_value(v: Value) -> Option<Self> {
        match v.as_int()? {
            0 => Some(Outcome::Served),
            1 => Some(Outcome::ReadTimeout),
            2 => Some(Outcome::HandlerTimeout),
            3 => Some(Outcome::HandlerError),
            4 => Some(Outcome::ParseError),
            5 => Some(Outcome::Aborted),
            6 => Some(Outcome::Killed),
            _ => None,
        }
    }
}

impl IntoValue for ServerStats {
    fn into_value(self) -> Value {
        self.cell.into_value()
    }
}

impl FromValue for ServerStats {
    fn from_value(v: Value) -> Option<Self> {
        Some(ServerStats {
            cell: MVar::from_value(v)?,
        })
    }
}

impl IntoValue for StatsSnapshot {
    fn into_value(self) -> Value {
        Value::List(vec![
            Value::Int(self.served),
            Value::Int(self.read_timeouts),
            Value::Int(self.handler_timeouts),
            Value::Int(self.handler_errors),
            Value::Int(self.parse_errors),
            Value::Int(self.active),
            Value::Int(self.accepted),
            Value::Int(self.aborted),
            Value::Int(self.killed),
            Value::Int(self.shed),
        ])
    }
}

impl FromValue for StatsSnapshot {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::List(xs) if xs.len() == 10 => {
                let ints: Option<Vec<i64>> = xs.into_iter().map(|x| x.as_int()).collect();
                let ints = ints?;
                Some(StatsSnapshot {
                    served: ints[0],
                    read_timeouts: ints[1],
                    handler_timeouts: ints[2],
                    handler_errors: ints[3],
                    parse_errors: ints[4],
                    active: ints[5],
                    accepted: ints[6],
                    aborted: ints[7],
                    killed: ints[8],
                    shed: ints[9],
                })
            }
            _ => None,
        }
    }
}

impl IntoValue for Server {
    fn into_value(self) -> Value {
        Value::List(vec![
            Value::ThreadId(self.acceptor),
            self.stats.into_value(),
            self.workers.into_value(),
        ])
    }
}

impl FromValue for Server {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::List(xs) if xs.len() == 3 => {
                let mut it = xs.into_iter();
                Some(Server {
                    acceptor: it.next()?.as_thread_id()?,
                    stats: ServerStats::from_value(it.next()?)?,
                    workers: MVar::from_value(it.next()?)?,
                })
            }
            _ => None,
        }
    }
}

/// A running server: the acceptor's thread id plus the shared counters.
#[derive(Debug, Clone, Copy)]
pub struct Server {
    /// The acceptor thread (kill it to stop accepting).
    pub acceptor: ThreadId,
    /// Shared counters.
    pub stats: ServerStats,
    /// Every worker thread the acceptor ever forked (a `Value::List`
    /// of `ThreadId`s) — the registry a fault injector aims its
    /// `KillThread` storms at. Ids are never removed: throwing to a
    /// finished worker is a no-op thanks to generation-tagged ids.
    pub workers: MVar<Value>,
}

impl Server {
    /// Stops accepting new connections (in-flight requests finish).
    ///
    /// `accept` blocks on an `MVar`, an interruptible operation, so the
    /// `KillThread` lands even though the acceptor spends its life
    /// blocked — the whole reason §5.3 exists.
    pub fn shutdown(&self) -> Io<()> {
        kill_thread(self.acceptor)
    }

    /// Stops accepting with the §9 *synchronous* `throwTo`: returns
    /// only once the `KillThread` has actually been delivered, i.e.
    /// the acceptor is dead and will never account another connection.
    ///
    /// This is the shutdown to use before auditing the counters. With
    /// the asynchronous [`shutdown`](Self::shutdown), the acceptor may
    /// still be mid-iteration (masked, bookkeeping an accept) when the
    /// caller moves on — a concurrent [`drain`](Self::drain) +
    /// [`snapshot`](ServerStats::snapshot) can then observe a *torn*
    /// state: `accepted` already bumped, the worker's `active` not yet
    /// visible, nothing recorded. The schedule explorer found exactly
    /// that interleaving; synchronous delivery closes it, because the
    /// throw cannot land inside the acceptor's masked bookkeeping —
    /// only while it waits in `accept` or between iterations.
    pub fn shutdown_sync(&self) -> Io<()> {
        Io::throw_to_sync(self.acceptor, Exception::kill_thread())
    }

    /// Waits (by polling the active counter) until every in-flight
    /// connection has finished. Because a worker's outcome is recorded
    /// in the *same transaction* as its active decrement, `drain`
    /// returning means every finished connection's outcome is already
    /// visible.
    pub fn drain(&self) -> Io<()> {
        wait_active_zero(self.stats)
    }

    /// Every worker thread id the acceptor ever forked, in fork order.
    pub fn worker_ids(&self) -> Io<Vec<ThreadId>> {
        conch_combinators::with_mvar(self.workers, Io::pure).map(|v| match v {
            Value::List(xs) => xs.into_iter().filter_map(|x| x.as_thread_id()).collect(),
            _ => Vec::new(),
        })
    }
}

/// Polls a stats cell until `active == 0` — the drain shared by the
/// classic server, the pooled server and every shard of the sharded
/// plane. Because an outcome is recorded in the *same transaction* as
/// its active decrement, this returning means every finished request's
/// outcome is already visible in the cell.
pub(crate) fn wait_active_zero(stats: ServerStats) -> Io<()> {
    stats.snapshot().and_then(move |s| {
        if s.active == 0 {
            Io::unit()
        } else {
            Io::sleep(100).then(wait_active_zero(stats))
        }
    })
}

/// Starts the server: forks the acceptor loop and returns immediately.
pub fn start(listener: Listener, h: Handler, config: ServerConfig) -> Io<Server> {
    ServerStats::new().and_then(move |stats| {
        Io::new_mvar(Value::List(Vec::new())).and_then(move |workers| {
            Io::fork(accept_loop(listener, h, config, stats, workers)).map(move |acceptor| Server {
                acceptor,
                stats,
                workers,
            })
        })
    })
}

/// Appends a freshly forked worker's id to the registry. The masked
/// modify keeps the acceptor's `block` section free of `unblock`
/// windows; if a `KillThread` still lands while the registry `take`
/// blocks, the worker is already forked and accounted — it merely goes
/// unregistered, which only makes it invisible to kill storms.
pub(crate) fn register_worker(workers: MVar<Value>, tid: ThreadId) -> Io<()> {
    modify_mvar_masked(workers, move |v| {
        let mut xs = match v {
            Value::List(xs) => xs,
            _ => Vec::new(),
        };
        xs.push(Value::ThreadId(tid));
        Io::pure(Value::List(xs))
    })
}

/// The acceptor: accept, account, shed or fork a worker, loop. The
/// post-accept bookkeeping runs inside `block` so a graceful-shutdown
/// `KillThread` can only land while the acceptor *waits* (accept is an
/// interruptible operation, §5.3) — never between taking a connection
/// off the queue and accounting for it, which would strand the
/// connection outside the conservation law.
fn accept_loop(
    listener: Listener,
    h: Handler,
    config: ServerConfig,
    stats: ServerStats,
    workers: MVar<Value>,
) -> Io<()> {
    let h2 = Rc::clone(&h);
    Io::block(listener.accept().and_then(move |conn| {
        // One transaction decides shedding and accounts the connection:
        // `accepted` rises, and *in the same commit* either `shed`
        // rises (no worker spent) or `active` does (a worker will be
        // forked). There is no interleaving in which `drain` can
        // observe an accepted connection that is neither shed, active,
        // nor recorded — the torn states the explorer kept finding when
        // these were separate cells.
        stats
            .txn(move |s| {
                s.accepted += 1;
                let shed = s.active >= config.max_active;
                if shed {
                    s.shed += 1;
                } else {
                    s.active += 1;
                }
                shed
            })
            .and_then(move |shed| {
                if shed {
                    // Graceful degradation: answer 503 + Retry-After
                    // without spending a worker. `send_response` never
                    // blocks, so the shed path cannot wedge the acceptor.
                    conn.send_response(Response::unavailable(config.retry_after).render())
                } else {
                    // The worker inherits the acceptor's mask, so its
                    // killed-path catch is installed before any
                    // asynchronous exception can land.
                    let worker = handle_connection(conn, Rc::clone(&h), config, stats);
                    Io::fork(worker).and_then(move |tid| register_worker(workers, tid))
                }
            })
    }))
    .and_then(move |_| accept_loop(listener, h2, config, stats, workers))
}

/// Handles one connection: the case study's core choreography, plus
/// the hardening pass — every exit path (normal outcome, peer abort,
/// asynchronous kill) funnels into [`finish`], which records exactly
/// one outcome counter *in the same transaction* as the active
/// decrement. `drain` returning therefore means every outcome has
/// already been recorded.
///
/// Expects `active` to have been raised by the acceptor's accept
/// transaction (see `accept_loop`); the worker only lowers it.
pub fn handle_connection(
    conn: Connection,
    h: Handler,
    config: ServerConfig,
    stats: ServerStats,
) -> Io<()> {
    // Runs masked when forked by the acceptor (mask inheritance), and
    // the catch is installed while still masked: a catch handler runs
    // at its *saved* mask. Only serve_one runs unblocked. Anything
    // still uncaught after serve_one's own recovery is a worker torn
    // down by an asynchronous exception (e.g. a KillThread storm) —
    // its outcome is `Killed`.
    Io::unblock(serve_one(conn, h, config))
        .catch(|_| Io::pure(Outcome::Killed))
        .and_then(move |outcome| finish(stats, outcome))
}

/// The worker's single commit point: record the connection's outcome
/// and lower the active count, atomically. If a `KillThread` lands
/// while the transaction's `take` is still blocked (the cell is
/// contended — `drain` polls it), nothing was committed yet: catch and
/// retry with the *same* outcome. Each storm strike can force at most
/// one retry, so any finite storm terminates.
pub(crate) fn finish(stats: ServerStats, outcome: Outcome) -> Io<()> {
    stats
        .txn(move |s| {
            debug_assert!(s.active > 0, "active underflow recording {outcome:?}");
            outcome.record(s);
            s.active -= 1;
        })
        .catch(move |_| finish(stats, outcome))
}

pub(crate) fn serve_one(conn: Connection, h: Handler, config: ServerConfig) -> Io<Outcome> {
    let main = timeout(config.read_timeout, conn.read_request_text()).and_then(move |text| {
        match text {
            None => conn
                .send_response(Response::status(408).render())
                .map(|_| Outcome::ReadTimeout),
            Some(text) => match parse_request(&text) {
                Err(_) => conn
                    .send_response(Response::status(400).render())
                    .map(|_| Outcome::ParseError),
                Ok(req) => {
                    // §9 warns that a universal `catch` inside timed code can
                    // intercept the timeout mechanism itself. Our `timeout`
                    // kills the racing computation with KillThread, so the
                    // handler guard must re-throw that and convert only
                    // genuine handler failures into 500s. The guard *tags*
                    // the outcome (Left = crashed, Right = answered) so that
                    // exactly one outcome is reported per request.
                    let guarded = h(req)
                        .map(conch_combinators::Either::<Response, Response>::Right)
                        .catch(move |e| {
                            if e.is_kill_thread() {
                                Io::throw(e)
                            } else {
                                Io::pure(conch_combinators::Either::Left(Response {
                                    status: 500,
                                    body: format!("handler failed: {e}"),
                                    retry_after: None,
                                }))
                            }
                        });
                    timeout(config.handler_timeout, guarded).and_then(move |resp| match resp {
                        None => conn
                            .send_response(Response::status(504).render())
                            .map(|_| Outcome::HandlerTimeout),
                        Some(conch_combinators::Either::Right(resp)) => {
                            conn.send_response(resp.render()).map(|_| Outcome::Served)
                        }
                        Some(conch_combinators::Either::Left(resp)) => conn
                            .send_response(resp.render())
                            .map(|_| Outcome::HandlerError),
                    })
                }
            },
        }
    });
    // A peer that closes mid-request is an aborted connection, not a
    // server failure: account it and send nothing (nobody is reading).
    main.catch(move |e| {
        if e == crate::net::connection_closed() {
            Io::pure(Outcome::Aborted)
        } else {
            Io::throw(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_combinators::modify_mvar;
    use conch_runtime::prelude::*;

    fn hello_handler() -> Handler {
        handler(|req| Io::pure(Response::ok(format!("hello {}", req.path))))
    }

    fn run_one_request(
        h: Handler,
        cfg: ServerConfig,
        request_io: impl Fn(Connection) -> Io<()> + 'static,
    ) -> (String, StatsSnapshot) {
        let mut rt = Runtime::new();
        let prog = Listener::bind().and_then(move |l| {
            start(l, h, cfg).and_then(move |server| {
                l.connect().and_then(move |conn| {
                    Io::fork(request_io(conn))
                        .then(conn.read_response())
                        .and_then(move |resp| {
                            server
                                .shutdown()
                                .then(server.drain())
                                .then(server.stats.snapshot())
                                .map(move |snap| (resp, snap))
                        })
                })
            })
        });
        rt.run(prog).unwrap()
    }

    #[test]
    fn serves_a_simple_request() {
        let (resp, snap) = run_one_request(hello_handler(), ServerConfig::default(), |c| {
            c.send_text(Request::get("/x").render())
        });
        assert!(resp.contains("200 OK"), "got {resp}");
        assert!(resp.ends_with("hello /x"));
        assert_eq!(snap.served, 1);
        assert_eq!(snap.active, 0);
    }

    #[test]
    fn malformed_request_gets_400() {
        let (resp, snap) = run_one_request(hello_handler(), ServerConfig::default(), |c| {
            c.send_text("NONSENSE\r\n\r\n")
        });
        assert!(resp.contains("400"), "got {resp}");
        assert_eq!(snap.parse_errors, 1);
    }

    #[test]
    fn stalled_client_gets_408() {
        let (resp, snap) = run_one_request(hello_handler(), ServerConfig::default(), |c| {
            // Send half a request and stall forever.
            c.send_text("GET / HT")
        });
        assert!(resp.contains("408"), "got {resp}");
        assert_eq!(snap.read_timeouts, 1);
    }

    #[test]
    fn slow_handler_gets_504() {
        let slow = handler(|_| Io::sleep(1_000_000).map(|_| Response::ok("too late")));
        let (resp, snap) = run_one_request(slow, ServerConfig::default(), |c| {
            c.send_text(Request::get("/").render())
        });
        assert!(resp.contains("504"), "got {resp}");
        assert_eq!(snap.handler_timeouts, 1);
        assert_eq!(snap.served, 0);
    }

    #[test]
    fn crashing_handler_gets_500() {
        let crashing = handler(|_| Io::<Response>::throw(Exception::error_call("bug in handler")));
        let (resp, snap) = run_one_request(crashing, ServerConfig::default(), |c| {
            c.send_text(Request::get("/").render())
        });
        assert!(resp.contains("500"), "got {resp}");
        assert!(resp.contains("bug in handler"));
        assert_eq!(snap.handler_errors, 1);
    }

    #[test]
    fn slow_client_within_budget_is_served() {
        let cfg = ServerConfig {
            read_timeout: 100_000,
            ..ServerConfig::default()
        };
        let (resp, snap) = run_one_request(hello_handler(), cfg, |c| {
            c.send_text_slowly(Request::get("/slow").render(), 100)
        });
        assert!(resp.contains("200"), "got {resp}");
        assert_eq!(snap.served, 1);
        assert_eq!(snap.read_timeouts, 0);
    }

    #[test]
    fn serves_many_concurrent_connections() {
        let mut rt = Runtime::new();
        let n: i64 = 8;
        let prog = Listener::bind().and_then(move |l| {
            start(l, hello_handler(), ServerConfig::default()).and_then(move |server| {
                // n clients, each on its own thread, each reporting success.
                Io::new_mvar(0_i64).and_then(move |done| {
                    conch_runtime::io::for_each(n as u64, move |i| {
                        let client = l.connect().and_then(move |conn| {
                            conn.send_text(Request::get(format!("/{i}")).render())
                                .then(conn.read_response())
                                .and_then(move |resp| {
                                    assert!(resp.contains("200"), "got {resp}");
                                    modify_mvar(done, |d| Io::pure(d + 1))
                                })
                        });
                        Io::fork(client)
                    })
                    .then(wait_for(done, n))
                    .then(server.shutdown())
                    .then(server.drain())
                    .then(server.stats.snapshot())
                })
            })
        });
        fn wait_for(done: MVar<i64>, n: i64) -> Io<()> {
            conch_combinators::with_mvar(done, Io::pure).and_then(move |d| {
                if d >= n {
                    Io::unit()
                } else {
                    Io::sleep(50).then(wait_for(done, n))
                }
            })
        }
        let snap = rt.run(prog).unwrap();
        assert_eq!(snap.served, n);
        assert_eq!(snap.active, 0);
    }

    #[test]
    fn serves_and_conserves_counters() {
        let (_, snap) = run_one_request(hello_handler(), ServerConfig::default(), |c| {
            c.send_text(Request::get("/x").render())
        });
        assert_eq!(snap.accepted, 1);
        assert!(snap.conserved(), "unbalanced counters: {snap:?}");
    }

    #[test]
    fn mid_request_close_counts_aborted() {
        let mut rt = Runtime::new();
        let prog = Listener::bind().and_then(move |l| {
            start(l, hello_handler(), ServerConfig::default()).and_then(move |server| {
                l.connect().and_then(move |conn| {
                    // Half a request, then hang up.
                    conn.send_text("GET / HT")
                        .then(conn.close())
                        .then(server.drain())
                        .then(server.shutdown())
                        .then(server.stats.snapshot())
                })
            })
        });
        let snap = rt.run(prog).unwrap();
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.aborted, 1);
        assert_eq!(snap.active, 0);
        assert!(snap.conserved(), "unbalanced counters: {snap:?}");
    }

    #[test]
    fn load_shedding_answers_503_with_retry_after() {
        let cfg = ServerConfig {
            max_active: 0,
            retry_after: 7,
            ..ServerConfig::default()
        };
        let (resp, snap) = run_one_request(hello_handler(), cfg, |c| {
            c.send_text(Request::get("/x").render())
        });
        assert!(resp.contains("503"), "got {resp}");
        assert!(resp.contains("Retry-After: 7"), "got {resp}");
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.served, 0);
        assert!(snap.conserved(), "unbalanced counters: {snap:?}");
    }

    #[test]
    fn killed_worker_counts_killed_and_conserves() {
        let mut rt = Runtime::new();
        let prog = Listener::bind().and_then(move |l| {
            start(l, hello_handler(), ServerConfig::default()).and_then(move |server| {
                l.connect().and_then(move |_conn| {
                    // Send nothing: the worker parks in the request read.
                    // Give the acceptor time to fork it, then storm every
                    // registered worker with KillThread.
                    Io::sleep(100)
                        .then(server.worker_ids())
                        .and_then(move |tids| {
                            assert_eq!(tids.len(), 1, "one worker expected");
                            conch_runtime::io::sequence(
                                tids.iter().map(|t| kill_thread(*t)).collect(),
                            )
                        })
                        .then(server.drain())
                        .then(server.shutdown())
                        .then(server.stats.snapshot())
                })
            })
        });
        let snap = rt.run(prog).unwrap();
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.killed, 1);
        assert_eq!(snap.active, 0);
        assert!(snap.conserved(), "unbalanced counters: {snap:?}");
    }

    #[test]
    fn shutdown_stops_accepting_but_not_inflight() {
        let mut rt = Runtime::new();
        // A slow-ish handler; shutdown arrives mid-request; the in-flight
        // request still completes.
        let slowish = handler(|_| Io::sleep(5_000).map(|_| Response::ok("done")));
        let prog = Listener::bind().and_then(move |l| {
            start(l, slowish, ServerConfig::default()).and_then(move |server| {
                l.connect().and_then(move |conn| {
                    Io::fork(conn.send_text(Request::get("/").render()))
                        .then(Io::sleep(1_000)) // request is now in flight
                        .then(server.shutdown())
                        .then(conn.read_response())
                        .and_then(move |resp| server.drain().then(Io::pure(resp)))
                })
            })
        });
        let resp = rt.run(prog).unwrap();
        assert!(resp.contains("200"), "got {resp}");
    }
}
