//! Errors returned by [`Runtime::run`](crate::scheduler::Runtime::run).

use std::error::Error;
use std::fmt;

use crate::exception::Exception;
use crate::ids::ThreadId;

/// Why a run of the main action failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The main thread died with an uncaught exception.
    Uncaught(Exception),
    /// Every live thread is stuck and no sleeper can ever wake: the
    /// program can make no further transition (the semantics' stuck soup).
    Deadlock {
        /// The threads that are stuck, with a human-readable reason each.
        stuck: Vec<(ThreadId, String)>,
    },
    /// The configured [`max_steps`](crate::config::RuntimeConfig::max_steps)
    /// budget was exhausted before the main thread finished.
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Uncaught(e) => write!(f, "main thread died with uncaught exception: {e}"),
            RunError::Deadlock { stuck } => {
                write!(f, "deadlock: all {} live threads are stuck (", stuck.len())?;
                for (i, (t, why)) in stuck.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{t} {why}")?;
                }
                write!(f, ")")
            }
            RunError::StepLimitExceeded { limit } => {
                write!(f, "step limit of {limit} exceeded")
            }
        }
    }
}

impl Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::tid;

    #[test]
    fn display_uncaught() {
        let e = RunError::Uncaught(Exception::kill_thread());
        assert!(e.to_string().contains("KillThread"));
    }

    #[test]
    fn display_deadlock_lists_threads() {
        let e = RunError::Deadlock {
            stuck: vec![(tid(0), "waiting on mvar#1".into())],
        };
        let s = e.to_string();
        assert!(s.contains("deadlock"));
        assert!(s.contains("thread#0"));
        assert!(s.contains("mvar#1"));
    }

    #[test]
    fn display_step_limit() {
        let e = RunError::StepLimitExceeded { limit: 10 };
        assert!(e.to_string().contains("10"));
    }
}
