//! The §11 case study end-to-end: a fault-tolerant web server facing a
//! hostile mix of clients.
//!
//! Run with `cargo run --example web_server`.
//!
//! Spins up the simulated server with tight budgets, throws a crowd of
//! good, stalling, trickling, garbage and crash-inducing clients at it,
//! then shuts down gracefully and prints the bookkeeping. Every request
//! gets *some* response — the server never wedges and never leaks a
//! worker — which is exactly the claim the paper makes for its Haskell
//! web server built on these combinators.

use conch::prelude::*;
use conch_httpd::client::{garbage_client, good_client, stalling_client, trickling_client};
use conch_httpd::http::Response;
use conch_httpd::net::Listener;
use conch_httpd::server::{handler, start, Handler, ServerConfig, StatsSnapshot};
use conch_runtime::io::{for_each, sequence};

fn routes() -> Handler {
    handler(|req| match req.path.as_str() {
        "/" => Io::pure(Response::ok("welcome")),
        "/slow" => Io::sleep(200_000).map(|_| Response::ok("eventually")),
        "/crash" => Io::<Response>::throw(Exception::error_call("handler bug")),
        "/compute" => Io::compute_returning(5_000, Response::ok("computed")),
        _ => Io::pure(Response::status(404)),
    })
}

fn main() {
    let mut rt = Runtime::new();
    let config = ServerConfig {
        read_timeout: 5_000,
        handler_timeout: 50_000,
        ..ServerConfig::default()
    };

    let prog = Listener::bind().and_then(move |listener| {
        start(listener, routes(), config).and_then(move |server| {
            Io::new_empty_mvar::<i64>().and_then(move |codes| {
                // The client crowd: 6 well-behaved, 2 stalling, 2 trickling
                // (one within budget, one beyond), 1 garbage, 2 crashing,
                // 1 slow-handler, 1 not-found.
                let spawn_all = for_each(6, move |i| {
                    Io::fork(good_client(
                        listener,
                        format!("/{}", if i % 2 == 0 { "" } else { "compute" }),
                        codes,
                    ))
                })
                .then(Io::fork(stalling_client(listener, codes)).map(|_| ()))
                .then(Io::fork(stalling_client(listener, codes)).map(|_| ()))
                .then(Io::fork(trickling_client(listener, "/".into(), 50, codes)).map(|_| ()))
                .then(Io::fork(trickling_client(listener, "/".into(), 2_000, codes)).map(|_| ()))
                .then(Io::fork(garbage_client(listener, codes)).map(|_| ()))
                .then(Io::fork(good_client(listener, "/crash".into(), codes)).map(|_| ()))
                .then(Io::fork(good_client(listener, "/crash".into(), codes)).map(|_| ()))
                .then(Io::fork(good_client(listener, "/slow".into(), codes)).map(|_| ()))
                .then(Io::fork(good_client(listener, "/nowhere".into(), codes)).map(|_| ()));

                const TOTAL: usize = 14;
                spawn_all
                    .then(sequence(
                        (0..TOTAL).map(|_| codes.take()).collect::<Vec<_>>(),
                    ))
                    .and_then(move |statuses| {
                        server
                            .shutdown()
                            .then(server.drain())
                            .then(server.stats.snapshot())
                            .map(move |snap| (statuses, snap))
                    })
            })
        })
    });

    let (mut statuses, snap): (Vec<i64>, StatsSnapshot) = rt.run(prog).unwrap();
    statuses.sort_unstable();

    println!("client-observed status codes: {statuses:?}");
    print_stats(&snap);
    println!(
        "virtual time: {}µs, scheduler steps: {}",
        rt.clock(),
        rt.stats().steps
    );
    println!(
        "threads forked: {}, exceptions delivered: {}",
        rt.stats().forks,
        rt.stats().total_deliveries(),
    );

    // Every client got an answer; nothing is still running.
    assert_eq!(statuses.len(), 14);
    assert!(statuses.iter().all(|s| *s > 0), "a client saw garbage");
    assert_eq!(snap.active, 0, "leaked workers");
    assert_eq!(snap.read_timeouts, 3); // 2 stallers + 1 too-slow trickler
    assert_eq!(snap.handler_errors, 2); // the /crash clients
    assert_eq!(snap.handler_timeouts, 1); // the /slow client
    println!("all invariants hold: no garbled responses, no leaked workers");
}

fn print_stats(snap: &StatsSnapshot) {
    println!(
        "server counters: served={}, 408s={}, 504s={}, 500s={}, 400s={}, active={}",
        snap.served,
        snap.read_timeouts,
        snap.handler_timeouts,
        snap.handler_errors,
        snap.parse_errors,
        snap.active
    );
}
