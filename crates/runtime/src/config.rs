//! Runtime configuration.
//!
//! The configuration exists to make the paper's design choices *togglable*
//! so the bench harness can measure them:
//!
//! * [`DeliveryMode`] — fully-asynchronous delivery (the paper's design)
//!   versus the polling / safe-point baseline used by Java, Modula-3 and
//!   PThreads deferred cancellation (§2, §10).
//! * [`RuntimeConfig::collapse_mask_frames`] — the §8.1 stack-frame
//!   optimization that lets mask-recursive functions run in constant stack.
//! * [`SchedulingPolicy`] — deterministic round-robin or seeded random
//!   preemption, so tests can explore interleavings reproducibly.

/// How asynchronous exceptions are delivered to *runnable* threads.
///
/// Blocked (stuck) threads are always interruptible per the (Interrupt)
/// rule, in both modes — this matches Java, where `interrupt()` wakes a
/// `wait`/`sleep` immediately but otherwise only sets a flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeliveryMode {
    /// The paper's design: pending exceptions are delivered at every
    /// interpreter step boundary while the thread is unmasked — i.e. at
    /// *any* program point, including mid-`compute`.
    FullyAsync,
    /// The semi-asynchronous baseline (§2, §10): a runnable thread only
    /// receives pending exceptions at explicit
    /// [`Io::poll_safe_point`](crate::io::Io::poll_safe_point) calls.
    Polling,
}

/// Which thread runs next, and for how long.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulingPolicy {
    /// Deterministic round-robin with a fixed quantum of interpreter steps.
    RoundRobin,
    /// Seeded pseudo-random choice of the next thread and quantum length.
    /// Deterministic for a given seed; used to explore interleavings.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Every scheduling decision is made by an externally supplied
    /// [`Decider`](crate::decide::Decider) (see
    /// [`Runtime::set_decider`](crate::scheduler::Runtime::set_decider)):
    /// the driver picks the next runnable thread at every step boundary
    /// (the quantum is forced to 1) and chooses the step at which each
    /// pending asynchronous exception is delivered. This is the hook the
    /// schedule explorer drives. Without a decider installed it degrades
    /// to round-robin with a quantum of 1.
    External,
}

/// What happens when every thread is stuck and no sleeper can wake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeadlockPolicy {
    /// Stop and report [`RunError::Deadlock`](crate::error::RunError::Deadlock).
    Report,
    /// Mirror GHC: deliver `BlockedIndefinitely` to every stuck
    /// thread and keep running.
    RaiseBlockedIndefinitely,
}

/// Configuration for a [`Runtime`](crate::scheduler::Runtime).
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_runtime::config::{DeliveryMode, RuntimeConfig};
///
/// let cfg = RuntimeConfig::new().delivery_mode(DeliveryMode::Polling);
/// let mut rt = Runtime::with_config(cfg);
/// assert_eq!(rt.run(Io::pure(1_i64)).unwrap(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Delivery mode for asynchronous exceptions. Default: `FullyAsync`.
    pub delivery: DeliveryMode,
    /// Scheduling policy. Default: round-robin.
    pub scheduling: SchedulingPolicy,
    /// Steps a thread runs before preemption. Default: 11 (a prime, so
    /// round-robin interleavings don't accidentally synchronize with
    /// loop bodies).
    pub quantum: u64,
    /// Apply the §8.1 adjacent block/unblock frame-collapse optimization.
    /// Default: `true`; disable for the ablation bench.
    pub collapse_mask_frames: bool,
    /// Deadlock handling. Default: report an error.
    pub deadlock: DeadlockPolicy,
    /// Hard cap on total interpreter steps (guards against accidental
    /// non-termination in tests). `None` = unbounded. Default: `None`.
    pub max_steps: Option<u64>,
    /// Hard cap on a single thread's frame-stack depth, modelling the
    /// finite stack of §2/§8.1. Exceeding it raises `StackOverflow` in the
    /// offending thread. `None` = unbounded. Default: `None`.
    pub stack_limit: Option<usize>,
    /// Whether `forkIO` children inherit the parent's masking state.
    ///
    /// The paper's (Fork) rule starts children unblocked; GHC later changed
    /// `forkIO` to inherit the mask precisely so that combinators like
    /// `either` (§7.2) can install their child-side handlers without a
    /// race. Default: `true` (GHC behaviour). Set `false` for paper-exact
    /// semantics (the conformance tests do).
    pub fork_inherits_mask: bool,
    /// Record scheduler-visible events (fork, throwTo, mask transitions,
    /// blocking) in the I/O trace alongside the observable console/clock
    /// events. Off by default so existing trace output is unchanged;
    /// the schedule explorer turns it on to explain failing
    /// interleavings.
    pub record_sched_events: bool,
}

impl RuntimeConfig {
    /// The default configuration (the paper's design on every axis).
    pub fn new() -> Self {
        RuntimeConfig {
            delivery: DeliveryMode::FullyAsync,
            scheduling: SchedulingPolicy::RoundRobin,
            quantum: 11,
            collapse_mask_frames: true,
            deadlock: DeadlockPolicy::Report,
            max_steps: None,
            stack_limit: None,
            fork_inherits_mask: true,
            record_sched_events: false,
        }
    }

    /// Sets the delivery mode.
    pub fn delivery_mode(mut self, mode: DeliveryMode) -> Self {
        self.delivery = mode;
        self
    }

    /// Sets the scheduling policy.
    pub fn scheduling(mut self, policy: SchedulingPolicy) -> Self {
        self.scheduling = policy;
        self
    }

    /// Sets the preemption quantum (in interpreter steps).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn quantum(mut self, quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be at least 1 step");
        self.quantum = quantum;
        self
    }

    /// Enables or disables the §8.1 frame-collapse optimization.
    pub fn collapse_mask_frames(mut self, on: bool) -> Self {
        self.collapse_mask_frames = on;
        self
    }

    /// Sets the deadlock policy.
    pub fn deadlock_policy(mut self, policy: DeadlockPolicy) -> Self {
        self.deadlock = policy;
        self
    }

    /// Caps the total number of interpreter steps.
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Caps per-thread stack depth (frames).
    pub fn stack_limit(mut self, frames: usize) -> Self {
        self.stack_limit = Some(frames);
        self
    }

    /// Convenience: seeded random scheduling.
    pub fn random_scheduling(self, seed: u64) -> Self {
        self.scheduling(SchedulingPolicy::Random { seed })
    }

    /// Convenience: externally-driven scheduling (see
    /// [`SchedulingPolicy::External`]).
    pub fn external_scheduling(self) -> Self {
        self.scheduling(SchedulingPolicy::External)
    }

    /// Enables or disables scheduler-visible events in the I/O trace.
    pub fn record_sched_events(mut self, on: bool) -> Self {
        self.record_sched_events = on;
        self
    }

    /// Sets whether `forkIO` children inherit the parent's masking state.
    pub fn fork_inherits_mask(mut self, on: bool) -> Self {
        self.fork_inherits_mask = on;
        self
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig::new()
    }
}

// The parallel schedule explorer builds one runtime per worker thread
// from a shared `&RuntimeConfig`; this compile-time assertion keeps the
// config plain `Send + Sync` data so that stays possible.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RuntimeConfig>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_design() {
        let cfg = RuntimeConfig::default();
        assert_eq!(cfg.delivery, DeliveryMode::FullyAsync);
        assert!(cfg.collapse_mask_frames);
        assert_eq!(cfg.deadlock, DeadlockPolicy::Report);
        assert_eq!(cfg.scheduling, SchedulingPolicy::RoundRobin);
    }

    #[test]
    fn builder_chains() {
        let cfg = RuntimeConfig::new()
            .delivery_mode(DeliveryMode::Polling)
            .quantum(3)
            .collapse_mask_frames(false)
            .max_steps(1000)
            .stack_limit(64)
            .random_scheduling(42);
        assert_eq!(cfg.delivery, DeliveryMode::Polling);
        assert_eq!(cfg.quantum, 3);
        assert!(!cfg.collapse_mask_frames);
        assert_eq!(cfg.max_steps, Some(1000));
        assert_eq!(cfg.stack_limit, Some(64));
        assert_eq!(cfg.scheduling, SchedulingPolicy::Random { seed: 42 });
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn zero_quantum_rejected() {
        let _ = RuntimeConfig::new().quantum(0);
    }
}
