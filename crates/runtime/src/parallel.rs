//! Wall-clock parallelism: one scheduler per shard, epoch-synced.
//!
//! A single [`Runtime`] interprets every thread of every httpd shard on
//! one OS thread, so virtual-time scaling (16x at 16 shards) never
//! becomes hardware scaling — wall throughput stays flat at any shard
//! count. [`MultiRuntime`] removes that last serial wall by pinning N
//! *independent* `Runtime` instances to OS threads, each with its own
//! run queue, timer wheel, thread table and stats, and connecting them
//! with deterministic cross-runtime channels.
//!
//! ## The epoch-barrier discipline
//!
//! Shards share nothing while they run. Virtual time is partitioned
//! into **epochs** of [`MultiConfig::epoch_us`] microseconds; within an
//! epoch every shard interprets its own threads freely (its clock is
//! capped at the epoch's end), and all cross-shard traffic — data
//! sends, cross-shard `throwTo`, aggregate-stat messages — is buffered
//! in a shard-local outbox. At the **barrier** between rounds the
//! coordinator drains every outbox, orders the messages by
//! `(source_shard, seq)`, and delivers them before any shard takes its
//! next step. Delivery order therefore depends only on program
//! behaviour, never on OS scheduling: every run is bit-identical for
//! any `os_threads` count, and `os_threads = 1` is the semantic oracle
//! for `os_threads = N`.
//!
//! An epoch may take several **rounds**: a shard that exhausts its
//! per-round step budget, or is woken by a barrier delivery, runs again
//! under the same clock cap. The epoch advances only when every shard
//! is idle and nothing is in flight, fast-forwarding straight to the
//! epoch containing the earliest pending wake — so mostly-sleeping
//! programs cost barriers proportional to activity, not to virtual
//! time.
//!
//! ## Asynchronous exceptions across the boundary
//!
//! The paper lets a `throwTo` land at *any step boundary* of the
//! target. A cross-shard throw is buffered like any other message and
//! lands at the next epoch barrier — which **is** a step boundary of
//! the target shard (no thread is mid-step while the coordinator owns
//! the runtime), so rules (Receive)/(Interrupt) apply unchanged; the
//! throw is merely delayed, which the paper's semantics always
//! permitted (delivery was never promised to be prompt, only sound).
//! A throw addressed to a thread that has died — even if its slot was
//! reused by a later spawn — is a no-op, exactly as within one runtime:
//! the generation-tagged [`ThreadId`] misses the new occupant.
//!
//! ## Deadlock
//!
//! A locally-stuck shard may still be woken by a message, so a capped
//! shard never applies its own deadlock policy. Only the coordinator —
//! seeing every shard idle with no sleeper anywhere and no message in
//! flight — declares the *global* deadlock, then applies the configured
//! [`DeadlockPolicy`] to every shard in shard order.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::mpsc;
use std::thread;

use crate::config::{DeadlockPolicy, RuntimeConfig};
use crate::error::RunError;
use crate::exception::Exception;
use crate::ids::{MVarId, ThreadId};
use crate::io::Io;
use crate::mvar::MVar;
use crate::scheduler::{PumpOutcome, Runtime};
use crate::stats::Stats;
use crate::trace::render_trace;
use crate::value::Value;

/// Configuration for a [`MultiRuntime`].
#[derive(Debug, Clone)]
pub struct MultiConfig {
    /// Width of one virtual-time epoch, in microseconds. Cross-shard
    /// messages are delivered only at epoch/round barriers, so smaller
    /// epochs mean lower cross-shard latency but more barriers.
    pub epoch_us: u64,
    /// Optional per-shard, per-round interpreter step budget, so a
    /// CPU-bound shard (which never sleeps and so never hits the clock
    /// cap) still yields to the barrier deterministically.
    pub epoch_steps: Option<u64>,
    /// OS threads to spread the shards over. Results are bit-identical
    /// for every value; `1` is the semantic oracle.
    pub os_threads: usize,
    /// Configuration for each per-shard [`Runtime`].
    pub runtime: RuntimeConfig,
}

impl Default for MultiConfig {
    fn default() -> Self {
        MultiConfig {
            epoch_us: 1_000,
            epoch_steps: None,
            os_threads: 1,
            runtime: RuntimeConfig::default(),
        }
    }
}

/// A message crossing the shard boundary at an epoch barrier.
#[derive(Debug, Clone, PartialEq)]
pub enum CrossMsg {
    /// A value sent with [`ShardCtx::send`], delivered into the
    /// destination shard's inbox.
    Data(Value),
    /// A cross-shard `throwTo`, delivered via the destination runtime's
    /// host-side throw (a no-op if `target` is dead or its slot was
    /// reused — the generation check misses).
    Throw {
        /// The target thread *within the destination shard*.
        target: ThreadId,
        /// The exception to deliver.
        exc: Exception,
    },
}

/// One buffered cross-shard message with its deterministic ordering
/// key: barrier delivery is sorted by `(src, seq)`, and `seq` is the
/// per-source send counter, so the drain order is a pure function of
/// program behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Sending shard.
    pub src: u16,
    /// Per-source monotone send counter.
    pub seq: u64,
    /// Destination shard.
    pub dest: u16,
    /// The payload.
    pub msg: CrossMsg,
}

#[derive(Default)]
struct Outbox {
    next_seq: u64,
    msgs: Vec<Envelope>,
}

/// A shard program's handle to the cross-shard channel plane. Cloneable
/// and cheap (a few `Rc`s); every `Io` it builds captures clones, so
/// one ctx serves any number of threads within the shard.
#[derive(Clone)]
pub struct ShardCtx {
    shard: u16,
    shards: u16,
    outbox: Rc<RefCell<Outbox>>,
    inbox: Rc<RefCell<VecDeque<Value>>>,
    /// Wakeup token for blocked receivers: the barrier try-puts it
    /// after delivering data, and a receiver that drains a value while
    /// more remain cascades it onward, so a non-empty inbox always has
    /// a token or an awake consumer.
    signal: MVarId,
}

impl ShardCtx {
    /// This shard's index.
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// Total number of shards in the [`MultiRuntime`].
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// Buffers `v` for `dest`'s inbox; it is delivered at the next
    /// epoch barrier, in `(src, seq)` order.
    ///
    /// # Panics
    ///
    /// The returned action panics when run if `dest` is out of range.
    pub fn send(&self, dest: u16, v: Value) -> Io<()> {
        self.post(dest, CrossMsg::Data(v))
    }

    /// Buffers a `throwTo` for thread `target` on shard `dest`; it
    /// lands at the next epoch barrier — a step boundary of the target
    /// shard — and is a no-op if the target died by then.
    pub fn throw_to(&self, dest: u16, target: ThreadId, exc: Exception) -> Io<()> {
        self.post(dest, CrossMsg::Throw { target, exc })
    }

    fn post(&self, dest: u16, msg: CrossMsg) -> Io<()> {
        let outbox = self.outbox.clone();
        let src = self.shard;
        let shards = self.shards;
        Io::effect(move || {
            assert!(dest < shards, "shard {dest} out of range ({shards} shards)");
            let mut ob = outbox.borrow_mut();
            let seq = ob.next_seq;
            ob.next_seq += 1;
            ob.msgs.push(Envelope {
                src,
                seq,
                dest,
                msg,
            });
        })
    }

    /// Pops the next delivered value without blocking, `None` if the
    /// inbox is empty.
    pub fn try_recv(&self) -> Io<Option<Value>> {
        self.pop_and_cascade()
    }

    /// Blocks until a cross-shard value arrives. Interruptible like any
    /// blocking take: waiting happens on the shard-local signal `MVar`,
    /// so an async exception can land while the thread is parked.
    pub fn recv(&self) -> Io<Value> {
        let ctx = self.clone();
        self.pop_and_cascade().and_then(move |got| match got {
            Some(v) => Io::pure(v),
            None => {
                let sig: MVar<i64> = MVar::from_id(ctx.signal);
                let again = ctx.clone();
                sig.take().and_then(move |_| again.recv())
            }
        })
    }

    /// Pops one value and, if more remain, re-arms the signal token so
    /// another blocked receiver (if any) wakes too.
    fn pop_and_cascade(&self) -> Io<Option<Value>> {
        let inbox = self.inbox.clone();
        let sig: MVar<i64> = MVar::from_id(self.signal);
        Io::effect(move || {
            let mut ib = inbox.borrow_mut();
            let v = ib.pop_front();
            let more = !ib.is_empty();
            (v, more)
        })
        .and_then(move |(v, more): (Option<Value>, bool)| {
            if more {
                sig.try_put(1).map(move |_| v)
            } else {
                Io::pure(v)
            }
        })
    }
}

/// A shard's program: built *inside* its pinned OS thread from this
/// `Send` closure, because the `Io` graph it returns (and the `Runtime`
/// interpreting it) are deliberately not `Send`.
pub type ShardProgram = Box<dyn FnOnce(&ShardCtx) -> Io<Value> + Send>;

/// What one shard produced.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The shard main thread's result. An unfinished shard (global
    /// deadlock under [`DeadlockPolicy::Report`], or one that stayed
    /// stuck through recovery) reports its own `Deadlock` stuck-set.
    pub result: Result<Value, RunError>,
    /// The shard runtime's counters.
    pub stats: Stats,
    /// Everything the shard wrote to its console.
    pub output: String,
    /// The shard's rendered I/O trace (golden-testable; record
    /// scheduling events via the runtime config as usual).
    pub trace: String,
    /// The shard's final virtual clock, µs.
    pub clock: u64,
}

/// The result of a [`MultiRuntime::run`]: per-shard reports plus the
/// global barrier record.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// One report per shard, in shard order.
    pub shards: Vec<ShardReport>,
    /// Every cross-shard message in global drain order, rendered as
    /// `r<round> s<src>.<seq>->s<dest> <kind>` — the bit-identical
    /// artifact the determinism tests pin.
    pub drain_log: Vec<String>,
    /// Barrier rounds executed.
    pub rounds: u64,
    /// Cross-shard messages delivered.
    pub messages: u64,
}

impl MultiReport {
    /// Field-wise merge of every shard's [`Stats`] (sums counters,
    /// maxes high-water marks) — the cross-thread-count determinism
    /// oracle's single-value summary.
    pub fn merged_stats(&self) -> Stats {
        let mut acc = Stats::default();
        for s in &self.shards {
            acc.merge(&s.stats);
        }
        acc
    }
}

enum Cmd {
    Round {
        sync_to: u64,
        cap: u64,
        budget: Option<u64>,
        /// Deliveries per *local* shard, in the worker's shard order.
        deliveries: Vec<Vec<Envelope>>,
    },
    InterruptStuck,
    Finish,
}

#[derive(Debug, Clone, Copy)]
enum Outcome {
    Finished,
    Budget,
    Idle { next_wake: Option<u64> },
    Done,
}

enum Reply {
    Round {
        outcomes: Vec<Outcome>,
        outmsgs: Vec<Envelope>,
    },
    Stuck {
        any_woken: bool,
    },
    /// Reports in the worker's local shard order; the coordinator maps
    /// them back to global indices via its assignment table.
    Finish(Vec<ShardReport>),
}

/// Coordinator-side status of one shard.
#[derive(Debug, Clone, Copy)]
enum Status {
    Running,
    Idle { next_wake: Option<u64> },
    Finished,
}

struct WorkerShard {
    rt: Runtime,
    outbox: Rc<RefCell<Outbox>>,
    inbox: Rc<RefCell<VecDeque<Value>>>,
    signal: MVarId,
    done: Option<Result<Value, RunError>>,
}

fn worker_main(
    runtime_config: RuntimeConfig,
    shard_count: u16,
    programs: Vec<(u16, ShardProgram)>,
    rx: mpsc::Receiver<Cmd>,
    tx: mpsc::Sender<Reply>,
) {
    let mut shards: Vec<WorkerShard> = programs
        .into_iter()
        .map(|(global, program)| {
            let mut rt = Runtime::with_config(runtime_config.clone());
            let signal = rt.host_alloc_mvar();
            let outbox = Rc::new(RefCell::new(Outbox::default()));
            let inbox = Rc::new(RefCell::new(VecDeque::new()));
            let ctx = ShardCtx {
                shard: global,
                shards: shard_count,
                outbox: Rc::clone(&outbox),
                inbox: Rc::clone(&inbox),
                signal,
            };
            let action = program(&ctx).action;
            rt.begin_run(action);
            WorkerShard {
                rt,
                outbox,
                inbox,
                signal,
                done: None,
            }
        })
        .collect();

    for cmd in rx {
        match cmd {
            Cmd::Round {
                sync_to,
                cap,
                budget,
                deliveries,
            } => {
                let mut outcomes = Vec::with_capacity(shards.len());
                let mut outmsgs = Vec::new();
                for (ws, delivery) in shards.iter_mut().zip(deliveries) {
                    if ws.done.is_some() {
                        // Deliveries to a finished shard are dropped:
                        // (Proc GC) killed every thread, so a data send
                        // has no receiver and a throw has no target.
                        outcomes.push(Outcome::Done);
                        continue;
                    }
                    ws.rt.sync_clock_forward(sync_to);
                    let mut any_data = false;
                    for env in delivery {
                        match env.msg {
                            CrossMsg::Data(v) => {
                                ws.inbox.borrow_mut().push_back(v);
                                any_data = true;
                            }
                            CrossMsg::Throw { target, exc } => ws.rt.host_throw_to(target, exc),
                        }
                    }
                    if any_data {
                        ws.rt.host_try_put_mvar(ws.signal, Value::Int(1));
                    }
                    let outcome = match ws.rt.pump(cap, budget) {
                        PumpOutcome::Finished(res) => {
                            ws.done = Some(res);
                            Outcome::Finished
                        }
                        PumpOutcome::Budget => Outcome::Budget,
                        PumpOutcome::Idle { next_wake } => Outcome::Idle { next_wake },
                    };
                    outcomes.push(outcome);
                    outmsgs.append(&mut ws.outbox.borrow_mut().msgs);
                }
                let _ = tx.send(Reply::Round { outcomes, outmsgs });
            }
            Cmd::InterruptStuck => {
                let mut any_woken = false;
                for ws in shards.iter_mut() {
                    if ws.done.is_none() && ws.rt.interrupt_all_stuck() {
                        any_woken = true;
                    }
                }
                let _ = tx.send(Reply::Stuck { any_woken });
            }
            Cmd::Finish => {
                let reports = shards
                    .iter_mut()
                    .map(|ws| {
                        let result = match ws.done.take() {
                            Some(r) => r,
                            None => Err(ws.rt.deadlock_error()),
                        };
                        ShardReport {
                            result,
                            stats: ws.rt.stats().clone(),
                            output: ws.rt.output().to_owned(),
                            trace: render_trace(ws.rt.io_trace()),
                            clock: ws.rt.clock(),
                        }
                    })
                    .collect::<Vec<_>>();
                let _ = tx.send(Reply::Finish(reports));
                return;
            }
        }
    }
}

/// N pinned schedulers plus the barrier coordinator. See the module
/// docs for the discipline; see `conch_httpd`'s wall-parallel plane and
/// the bench's `wall_parallel` rows for the payoff.
pub struct MultiRuntime {
    config: MultiConfig,
}

impl MultiRuntime {
    /// A multi-runtime with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_us` is 0 (epochs must have positive width) or
    /// `os_threads` is 0.
    pub fn new(config: MultiConfig) -> Self {
        assert!(config.epoch_us >= 1, "epoch_us must be at least 1µs");
        assert!(config.os_threads >= 1, "os_threads must be at least 1");
        MultiRuntime { config }
    }

    /// The configuration this multi-runtime was built with.
    pub fn config(&self) -> &MultiConfig {
        &self.config
    }

    /// Runs one program per shard to completion and returns the
    /// per-shard reports plus the global drain log. Bit-identical for
    /// any `os_threads`.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty, has more than `u16::MAX` shards,
    /// or if a shard program panics (the panic is propagated).
    pub fn run(&mut self, programs: Vec<ShardProgram>) -> MultiReport {
        let shard_count = programs.len();
        assert!(shard_count >= 1, "need at least one shard program");
        assert!(shard_count <= u16::MAX as usize, "too many shards");
        let workers = self.config.os_threads.min(shard_count);
        let epoch_us = self.config.epoch_us;

        // Distribute shards round-robin over workers; within a worker,
        // shards run in ascending global order, so the concatenation of
        // worker outboxes is already src-ascending per worker and one
        // global sort by (src, seq) fixes the total drain order.
        let mut per_worker: Vec<Vec<(u16, ShardProgram)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, p) in programs.into_iter().enumerate() {
            per_worker[i % workers].push((i as u16, p));
        }
        let assignment: Vec<Vec<u16>> = per_worker
            .iter()
            .map(|v| v.iter().map(|(g, _)| *g).collect())
            .collect();

        let mut cmd_txs = Vec::with_capacity(workers);
        let mut reply_rxs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for progs in per_worker {
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
            let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
            let rc = self.config.runtime.clone();
            let sc = shard_count as u16;
            handles.push(
                thread::Builder::new()
                    .name("conch-shard".into())
                    .spawn(move || worker_main(rc, sc, progs, cmd_rx, reply_tx))
                    .expect("spawn shard worker"),
            );
            cmd_txs.push(cmd_tx);
            reply_rxs.push(reply_rx);
        }

        let mut statuses = vec![Status::Running; shard_count];
        let mut pending: Vec<Envelope> = Vec::new();
        let mut drain_log = Vec::new();
        let mut epoch: u64 = 0;
        let mut rounds: u64 = 0;
        let mut messages: u64 = 0;

        loop {
            if statuses.iter().all(|s| matches!(s, Status::Finished)) {
                break;
            }
            let all_idle = statuses
                .iter()
                .all(|s| matches!(s, Status::Idle { .. } | Status::Finished));
            if pending.is_empty() && all_idle {
                let min_wake = statuses
                    .iter()
                    .filter_map(|s| match s {
                        Status::Idle { next_wake } => *next_wake,
                        _ => None,
                    })
                    .min();
                match min_wake {
                    Some(w) => {
                        // Every idle shard's next wake is past the old
                        // cap, so this strictly advances the epoch.
                        epoch = epoch.max(w / epoch_us);
                    }
                    None => {
                        // Global deadlock: nothing runnable, nothing
                        // sleeping, nothing in flight.
                        match self.config.runtime.deadlock {
                            DeadlockPolicy::Report => break,
                            DeadlockPolicy::RaiseBlockedIndefinitely => {
                                for tx in &cmd_txs {
                                    tx.send(Cmd::InterruptStuck).expect("worker alive");
                                }
                                let mut any = false;
                                for rx in &reply_rxs {
                                    match rx.recv().expect("worker alive") {
                                        Reply::Stuck { any_woken } => any |= any_woken,
                                        _ => unreachable!("expected Stuck reply"),
                                    }
                                }
                                if !any {
                                    break;
                                }
                                for s in statuses.iter_mut() {
                                    if !matches!(s, Status::Finished) {
                                        *s = Status::Running;
                                    }
                                }
                                continue;
                            }
                        }
                    }
                }
            }

            let sync_to = epoch * epoch_us;
            let cap = sync_to + (epoch_us - 1);
            let mut per_shard: Vec<Vec<Envelope>> = vec![Vec::new(); shard_count];
            for env in pending.drain(..) {
                per_shard[env.dest as usize].push(env);
            }
            for (w, tx) in cmd_txs.iter().enumerate() {
                let deliveries = assignment[w]
                    .iter()
                    .map(|&g| std::mem::take(&mut per_shard[g as usize]))
                    .collect();
                tx.send(Cmd::Round {
                    sync_to,
                    cap,
                    budget: self.config.epoch_steps,
                    deliveries,
                })
                .expect("worker alive");
            }
            rounds += 1;
            let mut outgoing: Vec<Envelope> = Vec::new();
            for (w, rx) in reply_rxs.iter().enumerate() {
                match rx.recv().expect("worker alive") {
                    Reply::Round { outcomes, outmsgs } => {
                        for (&g, outcome) in assignment[w].iter().zip(outcomes) {
                            statuses[g as usize] = match outcome {
                                Outcome::Finished | Outcome::Done => Status::Finished,
                                Outcome::Budget => Status::Running,
                                Outcome::Idle { next_wake } => Status::Idle { next_wake },
                            };
                        }
                        outgoing.extend(outmsgs);
                    }
                    _ => unreachable!("expected Round reply"),
                }
            }
            outgoing.sort_by_key(|e| (e.src, e.seq));
            for env in &outgoing {
                messages += 1;
                drain_log.push(match &env.msg {
                    CrossMsg::Data(_) => {
                        format!("r{} s{}.{}->s{} data", rounds, env.src, env.seq, env.dest)
                    }
                    CrossMsg::Throw { target, .. } => format!(
                        "r{} s{}.{}->s{} throw t{}",
                        rounds,
                        env.src,
                        env.seq,
                        env.dest,
                        target.index()
                    ),
                });
            }
            pending = outgoing;
        }

        for tx in &cmd_txs {
            tx.send(Cmd::Finish).expect("worker alive");
        }
        let mut reports: Vec<Option<ShardReport>> = (0..shard_count).map(|_| None).collect();
        for (w, rx) in reply_rxs.iter().enumerate() {
            match rx.recv().expect("worker alive") {
                Reply::Finish(rs) => {
                    for (&g, report) in assignment[w].iter().zip(rs) {
                        reports[g as usize] = Some(report);
                    }
                }
                _ => unreachable!("expected Finish reply"),
            }
        }
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }

        MultiReport {
            shards: reports
                .into_iter()
                .map(|r| r.expect("every shard reported"))
                .collect(),
            drain_log,
            rounds,
            messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(os_threads: usize) -> MultiConfig {
        MultiConfig {
            epoch_us: 1_000,
            epoch_steps: None,
            os_threads,
            runtime: RuntimeConfig::default(),
        }
    }

    /// Shard 0 sends `rounds` ints to shard 1, which doubles and echoes
    /// them back; shard 0 returns the sum of echoes.
    fn ping_pong_programs() -> Vec<ShardProgram> {
        fn ping(ctx: ShardCtx, i: i64, acc: i64) -> Io<i64> {
            if i == 0 {
                return Io::pure(acc);
            }
            let ctx2 = ctx.clone();
            ctx.send(1, Value::Int(i))
                .then(ctx.recv())
                .and_then(move |v| {
                    let Value::Int(n) = v else { panic!("int") };
                    ping(ctx2, i - 1, acc + n)
                })
        }
        fn pong(ctx: ShardCtx, i: i64) -> Io<i64> {
            if i == 0 {
                return Io::pure(0);
            }
            let ctx2 = ctx.clone();
            ctx.recv().and_then(move |v| {
                let Value::Int(n) = v else { panic!("int") };
                ctx2.send(0, Value::Int(2 * n))
                    .then(pong(ctx2.clone(), i - 1))
            })
        }
        vec![
            Box::new(|ctx: &ShardCtx| ping(ctx.clone(), 5, 0).map(Value::Int)),
            Box::new(|ctx: &ShardCtx| pong(ctx.clone(), 5).map(Value::Int)),
        ]
    }

    #[test]
    fn ping_pong_round_trips_across_shards() {
        let report = MultiRuntime::new(config(1)).run(ping_pong_programs());
        assert_eq!(
            report.shards[0].result,
            Ok(Value::Int(2 * (5 + 4 + 3 + 2 + 1)))
        );
        assert_eq!(report.shards[1].result, Ok(Value::Int(0)));
        assert_eq!(report.messages, 10);
    }

    #[test]
    fn one_worker_is_the_oracle_for_many() {
        let base = MultiRuntime::new(config(1)).run(ping_pong_programs());
        for os_threads in [2, 4] {
            let par = MultiRuntime::new(config(os_threads)).run(ping_pong_programs());
            assert_eq!(par.drain_log, base.drain_log);
            assert_eq!(par.rounds, base.rounds);
            for (a, b) in base.shards.iter().zip(&par.shards) {
                assert_eq!(a.result, b.result);
                assert_eq!(a.stats, b.stats);
                assert_eq!(a.trace, b.trace);
                assert_eq!(a.clock, b.clock);
            }
        }
    }

    #[test]
    fn sleepy_shards_fast_forward_epochs() {
        let mk = || -> Vec<ShardProgram> {
            vec![
                Box::new(|_: &ShardCtx| Io::sleep(50_000).map(|()| Value::Int(1))),
                Box::new(|_: &ShardCtx| Io::sleep(70_000).map(|()| Value::Int(2))),
            ]
        };
        let report = MultiRuntime::new(config(2)).run(mk());
        assert_eq!(report.shards[0].result, Ok(Value::Int(1)));
        assert_eq!(report.shards[1].result, Ok(Value::Int(2)));
        assert_eq!(report.shards[0].clock, 50_000);
        assert_eq!(report.shards[1].clock, 70_000);
        // Epochs are skipped, not walked: 70 epochs of virtual time in
        // a handful of rounds.
        assert!(report.rounds < 10, "rounds = {}", report.rounds);
    }

    #[test]
    fn global_deadlock_reports_per_shard_stuck_sets() {
        let mk = || -> Vec<ShardProgram> {
            vec![
                Box::new(|ctx: &ShardCtx| ctx.recv()),
                Box::new(|ctx: &ShardCtx| ctx.recv()),
            ]
        };
        let mut cfg = config(2);
        cfg.runtime = RuntimeConfig::new().deadlock_policy(DeadlockPolicy::Report);
        let report = MultiRuntime::new(cfg).run(mk());
        for shard in &report.shards {
            assert!(
                matches!(shard.result, Err(RunError::Deadlock { .. })),
                "expected deadlock, got {:?}",
                shard.result
            );
        }
    }

    #[test]
    fn blocked_indefinitely_recovery_crosses_shards() {
        // Both shards block on recv forever; the global detector throws
        // BlockedIndefinitely into each, which the programs catch.
        let mk = || -> Vec<ShardProgram> {
            let prog = |ctx: &ShardCtx| {
                ctx.recv()
                    .map(|_| Value::Int(1))
                    .catch(|e| Io::pure(Value::Str(format!("caught: {e}"))))
            };
            vec![Box::new(prog) as ShardProgram, Box::new(prog)]
        };
        let mut cfg = config(2);
        cfg.runtime =
            RuntimeConfig::new().deadlock_policy(DeadlockPolicy::RaiseBlockedIndefinitely);
        let report = MultiRuntime::new(cfg).run(mk());
        for shard in &report.shards {
            assert_eq!(
                shard.result,
                Ok(Value::Str("caught: thread blocked indefinitely".into()))
            );
        }
    }

    #[test]
    fn cross_shard_throw_to_lands_at_the_barrier() {
        let mk = || -> Vec<ShardProgram> {
            vec![
                // Shard 0: report the victim tid, then sleep forever
                // unless interrupted.
                Box::new(|ctx: &ShardCtx| {
                    let ctx = ctx.clone();
                    Io::my_thread_id().and_then(move |tid| {
                        ctx.send(1, Value::ThreadId(tid)).then(
                            Io::sleep(1_000_000)
                                .map(|()| Value::Str("overslept".into()))
                                .catch(|e| Io::pure(Value::Str(format!("killed: {e}")))),
                        )
                    })
                }),
                // Shard 1: kill whatever tid shard 0 reported.
                Box::new(|ctx: &ShardCtx| {
                    let ctx = ctx.clone();
                    ctx.clone().recv().and_then(move |v| {
                        let Value::ThreadId(tid) = v else {
                            panic!("tid")
                        };
                        ctx.throw_to(0, tid, Exception::kill_thread())
                            .map(|()| Value::Int(1))
                    })
                }),
            ]
        };
        let report = MultiRuntime::new(config(2)).run(mk());
        assert_eq!(
            report.shards[0].result,
            Ok(Value::Str("killed: KillThread".into()))
        );
        assert_eq!(report.shards[1].result, Ok(Value::Int(1)));
        // One data message (the tid) and one throw crossed the plane.
        assert_eq!(report.messages, 2);
        assert!(
            report.drain_log[1].contains("throw"),
            "{:?}",
            report.drain_log
        );
    }

    #[test]
    fn send_to_out_of_range_shard_panics_the_run() {
        let mk = || -> Vec<ShardProgram> {
            vec![Box::new(|ctx: &ShardCtx| {
                ctx.send(7, Value::Int(1)).map(|()| Value::Unit)
            })]
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            MultiRuntime::new(config(1)).run(mk())
        }));
        assert!(result.is_err());
    }
}
