//! A supervised worker pool behind the accept loop.
//!
//! The classic server ([`crate::server::start`]) forks one worker per
//! connection and sheds load with an ad-hoc `active`-slot check inside
//! the accept transaction. This module rebuilds the serving side on
//! `conch-actors`:
//!
//! * a bounded [`Mailbox<Connection>`] is the accept queue — its
//!   capacity *is* the load-shedding bound, enforced by the mailbox's
//!   own kill-safe transactions instead of bespoke slot bookkeeping;
//! * a fixed set of worker actors shares that mailbox
//!   ([`spawn_actor_on`]), each serving connections in a loop;
//! * the workers sit under a **two-level supervision tree**: a
//!   one-for-one pool supervisor restarts crashed or killed workers on
//!   the *same* queue (no queued connection is lost to a restart), and
//!   a root supervisor restarts the pool supervisor itself if a fault
//!   storm takes it out. Kill storms may target workers *and* the pool
//!   supervisor (see `conch-faults`); the root is the trusted base that
//!   makes the tree self-healing.
//!
//! The counters and the conservation law are unchanged — the same
//! [`ServerStats`] cell, the same [`finish`] commit point — so the
//! audit protocol (`shutdown_sync` → `drain` → `snapshot`) and the
//! invariant `accepted == outcomes` carry over verbatim. The one new
//! subtlety is the acceptor's two-resource commit: enqueueing into the
//! mailbox and accounting in the stats cell are different `MVar`s, so
//! after the enqueue commits the accounting step is guarded by a
//! commit-then-rethrow `catch` — a `KillThread` landing between the
//! two commits still accounts the queued connection before the
//! acceptor dies, keeping `active` and the queue in agreement.

use std::rc::Rc;

use conch_actors::{
    child_spec, spawn_actor_on, spawn_supervisor, supervisor_child, ChildSpec, Mailbox, Strategy,
    Supervisor, SupervisorSpec,
};
use conch_combinators::kill_thread;
use conch_runtime::exception::Exception;
use conch_runtime::ids::ThreadId;
use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::value::{FromValue, IntoValue, Value};

use crate::http::Response;
use crate::net::{Connection, Listener};
use crate::server::{
    finish, register_worker, serve_one, Handler, Outcome, ServerConfig, ServerStats,
};

/// Pool sizing and restart budget, on top of the per-request
/// [`ServerConfig`] knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of worker actors sharing the accept queue.
    pub workers: usize,
    /// Accept-queue capacity — the load-shedding bound: a connection
    /// arriving while the queue is full is answered `503`.
    pub queue_capacity: i64,
    /// Restart budget for each supervisor in the tree: more than
    /// `max_restarts` abnormal worker exits within `window` virtual
    /// microseconds and the pool supervisor gives up (the root then
    /// restarts the whole pool).
    pub max_restarts: usize,
    /// The sliding intensity window, in virtual microseconds.
    pub window: i64,
    /// Per-request timeouts and the `Retry-After` hint.
    pub server: ServerConfig,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 4,
            queue_capacity: 8,
            max_restarts: 16,
            window: 1_000_000,
            server: ServerConfig::default(),
        }
    }
}

/// A running pooled server: the acceptor thread, the shared counters,
/// the accept queue and the supervision tree's root.
#[derive(Debug, Clone, Copy)]
pub struct PooledServer {
    /// The acceptor thread (kill it to stop accepting).
    pub acceptor: ThreadId,
    /// Shared counters — same cell, same conservation law as the
    /// classic server.
    pub stats: ServerStats,
    /// The accept queue the workers consume.
    pub queue: Mailbox<Connection>,
    /// Root of the supervision tree. Its single child is the pool
    /// supervisor; the workers are the pool supervisor's children.
    pub root: Supervisor,
    /// Every worker thread ever (re)started, in start order — the
    /// registry kill storms aim at. Ids are never removed; throwing to
    /// a finished worker is a no-op.
    pub workers: MVar<Value>,
}

impl PooledServer {
    /// Stops accepting new connections (queued and in-flight requests
    /// still finish — the workers outlive the acceptor).
    pub fn shutdown(&self) -> Io<()> {
        kill_thread(self.acceptor)
    }

    /// Stops accepting with the §9 synchronous `throwTo` — the
    /// audit-grade shutdown: once it returns, `accepted` is final.
    pub fn shutdown_sync(&self) -> Io<()> {
        Io::throw_to_sync(self.acceptor, Exception::kill_thread())
    }

    /// Tears the whole tree down: acceptor first (synchronously), then
    /// the root supervisor, whose exit guard reaps the pool supervisor,
    /// whose guard reaps every worker — no orphans.
    pub fn stop_sync(&self) -> Io<()> {
        self.shutdown_sync().then(self.root.shutdown_sync())
    }

    /// Waits (by polling) until no connection is queued or in flight.
    /// A worker's outcome commits in the same transaction as its
    /// `active` decrement, so returning means every outcome is visible.
    pub fn drain(&self) -> Io<()> {
        crate::server::wait_active_zero(self.stats)
    }

    /// Every worker thread id ever started, in start order (restarted
    /// incarnations append).
    pub fn worker_ids(&self) -> Io<Vec<ThreadId>> {
        conch_combinators::with_mvar(self.workers, Io::pure).map(|v| match v {
            Value::List(xs) => xs.into_iter().filter_map(|x| x.as_thread_id()).collect(),
            _ => Vec::new(),
        })
    }

    /// The *current* pool-supervisor incarnation's thread ids — the
    /// supervisor-level storm targets. The root is deliberately not
    /// listed: it is the trusted base that heals the tree.
    pub fn pool_supervisor_ids(&self) -> Io<Vec<ThreadId>> {
        self.root
            .child_refs()
            .map(|refs| refs.iter().map(|c| c.tid()).collect())
    }
}

impl IntoValue for PooledServer {
    fn into_value(self) -> Value {
        Value::List(vec![
            Value::ThreadId(self.acceptor),
            self.stats.into_value(),
            self.queue.into_value(),
            self.root.into_value(),
            self.workers.into_value(),
        ])
    }
}

impl FromValue for PooledServer {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::List(xs) if xs.len() == 5 => {
                let mut it = xs.into_iter();
                Some(PooledServer {
                    acceptor: it.next()?.as_thread_id()?,
                    stats: ServerStats::from_value(it.next()?)?,
                    queue: Mailbox::from_value(it.next()?)?,
                    root: Supervisor::from_value(it.next()?)?,
                    workers: MVar::from_value(it.next()?)?,
                })
            }
            _ => None,
        }
    }
}

/// Starts the pooled server: spawns the supervision tree (which starts
/// the workers), then forks the acceptor.
pub fn start_pooled(listener: Listener, h: Handler, config: PoolConfig) -> Io<PooledServer> {
    ServerStats::new().and_then(move |stats| {
        Io::new_mvar(Value::List(Vec::new())).and_then(move |workers| {
            Mailbox::<Connection>::new(config.queue_capacity).and_then(move |queue| {
                let mut pool = SupervisorSpec::new(Strategy::OneForOne)
                    .intensity(config.max_restarts, config.window);
                for _ in 0..config.workers.max(1) {
                    pool = pool.child(pool_worker(
                        queue,
                        Rc::clone(&h),
                        config.server,
                        stats,
                        workers,
                    ));
                }
                let root = SupervisorSpec::new(Strategy::OneForOne)
                    .intensity(config.max_restarts, config.window)
                    .child(supervisor_child(pool));
                spawn_supervisor(root).and_then(move |root| {
                    Io::fork(pool_accept_loop(listener, queue, config.server, stats)).map(
                        move |acceptor| PooledServer {
                            acceptor,
                            stats,
                            queue,
                            root,
                            workers,
                        },
                    )
                })
            })
        })
    })
}

/// One worker child: an actor consuming the shared accept queue. Every
/// (re)start registers the new incarnation's thread id for the storm
/// registry. Restarting on the same mailbox is what makes restarts
/// lossless for queued connections.
fn pool_worker(
    queue: Mailbox<Connection>,
    h: Handler,
    config: ServerConfig,
    stats: ServerStats,
    workers: MVar<Value>,
) -> ChildSpec {
    child_spec(move || {
        let h = Rc::clone(&h);
        spawn_actor_on(queue, move |q| worker_loop(q, h, config, stats))
            .and_then(move |a| register_worker(workers, a.tid()).map(move |_| a.erase()))
    })
}

/// The worker body: receive, serve, repeat. Runs masked (the actor
/// shell), so between `recv`'s committed dequeue and the guard below
/// there is no interruptible point — a connection, once dequeued, is
/// always accounted.
fn worker_loop(
    queue: Mailbox<Connection>,
    h: Handler,
    config: ServerConfig,
    stats: ServerStats,
) -> Io<()> {
    queue.recv().and_then(move |conn| {
        let next = worker_loop(queue, Rc::clone(&h), config, stats);
        serve_guarded(conn, h, config, stats).then(next)
    })
}

/// Serves one dequeued connection. The request itself runs unmasked
/// (`serve_one` needs its timeouts interruptible); any exception that
/// escapes it — in practice an asynchronous `KillThread` from a storm
/// or a supervisor sweep — records the in-flight connection as
/// `Killed` *before* re-raising, so the worker dies with its books
/// balanced and the supervisor's replacement starts from a clean
/// queue. Compare [`crate::server::handle_connection`], which absorbs
/// the kill: a pool worker must re-raise so its shell reports the true
/// exit reason and the restart machinery engages.
fn serve_guarded(conn: Connection, h: Handler, config: ServerConfig, stats: ServerStats) -> Io<()> {
    Io::unblock(serve_one(conn, h, config))
        .and_then(move |outcome| finish(stats, outcome))
        .catch_info(move |e, origin| finish(stats, Outcome::Killed).then(Io::rethrow(e, origin)))
}

/// The pooled acceptor: accept, try to enqueue, account, answer `503`
/// on overflow, loop. Runs masked like the classic acceptor; the
/// commit-then-rethrow guard around `account` covers the window
/// between the queue commit and the stats commit (two cells cannot
/// change in one transaction).
fn pool_accept_loop(
    listener: Listener,
    queue: Mailbox<Connection>,
    config: ServerConfig,
    stats: ServerStats,
) -> Io<()> {
    Io::block(listener.accept().and_then(move |conn| {
        queue.try_send(conn).and_then(move |queued| {
            account(stats, queued)
                .catch(move |e| account(stats, queued).then(Io::throw(e)))
                .and_then(move |_| {
                    if queued {
                        Io::unit()
                    } else {
                        // Shed: answer without spending a worker.
                        // `send_response` never blocks, so this cannot
                        // wedge the acceptor.
                        conn.send_response(Response::unavailable(config.retry_after).render())
                    }
                })
        })
    }))
    .and_then(move |_| pool_accept_loop(listener, queue, config, stats))
}

/// The acceptor's single stats commit: `accepted` rises, and in the
/// same transaction either `active` (queued — a worker will serve it)
/// or `shed` does.
fn account(stats: ServerStats, queued: bool) -> Io<()> {
    stats.txn(move |s| {
        s.accepted += 1;
        if queued {
            s.active += 1;
        } else {
            s.shed += 1;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Request, Response};
    use crate::server::handler;
    use conch_runtime::prelude::*;

    fn hello() -> Handler {
        handler(|req| Io::pure(Response::ok(format!("hello {}", req.path))))
    }

    fn small_pool() -> PoolConfig {
        PoolConfig {
            workers: 2,
            queue_capacity: 4,
            ..PoolConfig::default()
        }
    }

    #[test]
    fn pooled_server_serves_requests() {
        let mut rt = Runtime::new();
        let prog = Listener::bind().and_then(move |l| {
            start_pooled(l, hello(), small_pool()).and_then(move |server| {
                l.connect().and_then(move |conn| {
                    conn.send_text(Request::get("/pool").render())
                        .then(conn.read_response())
                        .and_then(move |resp| {
                            server
                                .shutdown_sync()
                                .then(server.drain())
                                .then(server.stats.snapshot())
                                .and_then(move |snap| server.stop_sync().map(move |_| (resp, snap)))
                        })
                })
            })
        });
        let (resp, snap) = rt.run(prog).unwrap();
        assert!(resp.contains("200 OK"), "got {resp}");
        assert!(resp.ends_with("hello /pool"));
        assert_eq!(snap.served, 1);
        assert!(snap.conserved(), "unbalanced counters: {snap:?}");
    }

    #[test]
    fn pooled_server_serves_more_connections_than_workers() {
        let mut rt = Runtime::new();
        let n: i64 = 6;
        // Queue deep enough to hold every client at once: all six may
        // connect before either worker dequeues the first.
        let cfg = PoolConfig {
            workers: 2,
            queue_capacity: 8,
            ..PoolConfig::default()
        };
        let prog = Listener::bind().and_then(move |l| {
            start_pooled(l, hello(), cfg).and_then(move |server| {
                conch_runtime::io::for_each(n as u64, move |i| {
                    let client = l.connect().and_then(move |conn| {
                        conn.send_text(Request::get(format!("/{i}")).render())
                            .then(conn.read_response())
                            .map(|resp| assert!(resp.contains("200"), "got {resp}"))
                    });
                    Io::fork(client)
                })
                .then(wait_served(server.stats, n))
                .then(server.shutdown_sync())
                .then(server.drain())
                .then(server.stats.snapshot())
                .and_then(move |snap| server.stop_sync().map(move |_| snap))
            })
        });
        fn wait_served(stats: ServerStats, n: i64) -> Io<()> {
            stats.snapshot().and_then(move |s| {
                if s.served >= n {
                    Io::unit()
                } else {
                    Io::sleep(50).then(wait_served(stats, n))
                }
            })
        }
        let snap = rt.run(prog).unwrap();
        assert_eq!(snap.served, n);
        assert!(snap.conserved(), "unbalanced counters: {snap:?}");
    }

    #[test]
    fn full_queue_sheds_with_503() {
        // One worker wedged on a stalled client; queue of 1 absorbs one
        // more; the third connection must be shed.
        let cfg = PoolConfig {
            workers: 1,
            queue_capacity: 1,
            server: ServerConfig {
                read_timeout: 1_000_000,
                ..ServerConfig::default()
            },
            ..PoolConfig::default()
        };
        let mut rt = Runtime::new();
        let prog = Listener::bind().and_then(move |l| {
            start_pooled(l, hello(), cfg).and_then(move |server| {
                // First conn: worker picks it up and parks in the read.
                l.connect().and_then(move |stall1| {
                    Io::sleep(200)
                        // Second conn: sits in the queue.
                        .then(l.connect())
                        .and_then(move |_stall2| {
                            Io::sleep(200)
                                // Third conn: queue full -> 503.
                                .then(l.connect())
                                .and_then(move |conn| {
                                    conn.send_text(Request::get("/x").render())
                                        .then(conn.read_response())
                                        .and_then(move |resp| {
                                            stall1
                                                .close()
                                                .then(server.stats.snapshot())
                                                .map(move |snap| (resp, snap))
                                        })
                                })
                        })
                })
            })
        });
        let (resp, snap) = rt.run(prog).unwrap();
        assert!(resp.contains("503"), "got {resp}");
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.accepted, 3);
    }

    #[test]
    fn killed_worker_is_restarted_and_service_resumes() {
        let mut rt = Runtime::new();
        let prog = Listener::bind().and_then(move |l| {
            start_pooled(
                l,
                hello(),
                PoolConfig {
                    workers: 1,
                    queue_capacity: 4,
                    ..PoolConfig::default()
                },
            )
            .and_then(move |server| {
                // Serve one request, then kill the (only) worker, then
                // serve another: the restarted incarnation answers it.
                l.connect().and_then(move |c1| {
                    c1.send_text(Request::get("/a").render())
                        .then(c1.read_response())
                        .then(server.worker_ids())
                        .and_then(move |tids| {
                            Io::throw_to_sync(tids[0], Exception::kill_thread())
                                .then(wait_workers(server, 2))
                                .then(l.connect())
                                .and_then(move |c2| {
                                    c2.send_text(Request::get("/b").render())
                                        .then(c2.read_response())
                                        .and_then(move |resp| {
                                            server
                                                .shutdown_sync()
                                                .then(server.drain())
                                                .then(server.stats.snapshot())
                                                .and_then(move |snap| {
                                                    server.stop_sync().map(move |_| (resp, snap))
                                                })
                                        })
                                })
                        })
                })
            })
        });
        fn wait_workers(server: PooledServer, n: usize) -> Io<()> {
            server.worker_ids().and_then(move |tids| {
                if tids.len() >= n {
                    Io::unit()
                } else {
                    Io::sleep(50).then(wait_workers(server, n))
                }
            })
        }
        let (resp, snap) = rt.run(prog).unwrap();
        assert!(resp.contains("200"), "got {resp}");
        assert_eq!(snap.served, 2);
        assert!(snap.conserved(), "unbalanced counters: {snap:?}");
    }

    #[test]
    fn killed_pool_supervisor_heals_and_service_resumes() {
        let mut rt = Runtime::new();
        let prog = Listener::bind().and_then(move |l| {
            start_pooled(l, hello(), small_pool()).and_then(move |server| {
                l.connect().and_then(move |c1| {
                    c1.send_text(Request::get("/a").render())
                        .then(c1.read_response())
                        .then(server.pool_supervisor_ids())
                        .and_then(move |sups| {
                            assert_eq!(sups.len(), 1, "one pool supervisor expected");
                            // Kill the pool supervisor: its guard reaps
                            // the workers, the root restarts the pool.
                            Io::throw_to_sync(sups[0], Exception::kill_thread())
                                .then(wait_new_sup(server, sups[0]))
                                .then(l.connect())
                                .and_then(move |c2| {
                                    c2.send_text(Request::get("/b").render())
                                        .then(c2.read_response())
                                        .and_then(move |resp| {
                                            server
                                                .shutdown_sync()
                                                .then(server.drain())
                                                .then(server.stats.snapshot())
                                                .and_then(move |snap| {
                                                    server.stop_sync().map(move |_| (resp, snap))
                                                })
                                        })
                                })
                        })
                })
            })
        });
        fn wait_new_sup(server: PooledServer, old: conch_runtime::ids::ThreadId) -> Io<()> {
            server.pool_supervisor_ids().and_then(move |sups| {
                if sups.len() == 1 && sups[0] != old {
                    Io::unit()
                } else {
                    Io::sleep(50).then(wait_new_sup(server, old))
                }
            })
        }
        let (resp, snap) = rt.run(prog).unwrap();
        assert!(resp.contains("200"), "got {resp}");
        assert_eq!(snap.served, 2);
        assert!(snap.conserved(), "unbalanced counters: {snap:?}");
    }

    #[test]
    fn stop_sync_reaps_every_worker() {
        let mut rt = Runtime::new();
        let prog = Listener::bind().and_then(move |l| {
            start_pooled(l, hello(), small_pool()).and_then(move |server| {
                wait_pool_started(server)
                    .and_then(move |pools| server.stop_sync().then(wait_pool_dead(pools[0])))
            })
        });
        // The tree starts asynchronously; wait for the root to record
        // its pool-supervisor child before aiming at it.
        fn wait_pool_started(server: PooledServer) -> Io<Vec<conch_actors::ActorRef<Value>>> {
            server.root.child_refs().and_then(move |pools| {
                if pools.is_empty() {
                    Io::sleep(50).then(wait_pool_started(server))
                } else {
                    Io::pure(pools)
                }
            })
        }
        fn wait_pool_dead(pool: conch_actors::ActorRef<Value>) -> Io<i64> {
            pool.exit_reason().and_then(move |r| match r {
                Some(_) => Io::pure(1),
                None => Io::sleep(50).then(wait_pool_dead(pool)),
            })
        }
        assert_eq!(rt.run(prog).unwrap(), 1);
    }
}
