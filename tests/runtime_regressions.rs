//! Regression tests pinning runtime edge cases that the slot-reclaiming,
//! footprint-caching scheduler must preserve:
//!
//! * `RuntimeConfig.quantum == 0` is rejected on **both** construction
//!   paths (the builder method and a raw struct literal handed to
//!   `Runtime::with_config`) — a zero quantum would never execute any
//!   thread.
//! * The sleeper `BinaryHeap` is purged of stale entries, so a server
//!   pattern of repeated timeout-then-kill cycles runs in bounded
//!   memory instead of accumulating one dead entry per cycle.
//! * §5/§9 semantics of throwing at dead threads: an asynchronous
//!   `throwTo` aimed at a finished thread is a no-op — including when
//!   the finished thread's table slot has been reclaimed and reused by
//!   a live thread (generation-tagged `ThreadId`s must not let the old
//!   id alias the new occupant). The synchronous variant returns `()`
//!   without blocking in the same situations.
//! * §9's special case: a thread throwing *synchronously to itself*
//!   raises immediately, even inside `block`, and the raise carries the
//!   asynchronous origin.

use conch_runtime::io::for_each;
use conch_runtime::prelude::*;

// ---------------------------------------------------------------------
// Quantum validation (both construction paths)
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "quantum must be at least 1")]
fn quantum_zero_is_rejected_by_the_builder() {
    let _ = RuntimeConfig::new().quantum(0);
}

#[test]
#[should_panic(expected = "quantum must be at least 1")]
fn quantum_zero_in_a_raw_struct_literal_is_rejected_by_with_config() {
    // The fields are public, so a struct literal can bypass the builder;
    // `Runtime::with_config` must catch it anyway.
    let config = RuntimeConfig {
        quantum: 0,
        ..RuntimeConfig::new()
    };
    let _ = Runtime::with_config(config);
}

#[test]
fn quantum_one_is_accepted() {
    let mut rt = Runtime::with_config(RuntimeConfig::new().quantum(1));
    assert_eq!(rt.run(Io::pure(5_i64)).unwrap(), 5);
}

// ---------------------------------------------------------------------
// Sleeper-heap compaction
// ---------------------------------------------------------------------

/// 10k cycles of "fork a sleeper, kill it". Every kill interrupts the
/// sleep and strands a stale entry in the sleeper heap; without purging,
/// the heap (and the thread table) would grow by one entry per cycle.
#[test]
fn sleeper_heap_stays_bounded_across_timeout_kill_cycles() {
    const CYCLES: u64 = 10_000;
    let mut rt = Runtime::new();
    let prog = for_each(CYCLES, |_| {
        Io::fork(Io::sleep(1_000_000).catch(|_| Io::unit())).and_then(|child| {
            // Let the child reach its sleep, then interrupt it.
            Io::yield_now().then(Io::throw_to(child, Exception::kill_thread()))
        })
    });
    rt.run(prog).unwrap();
    let stats = rt.stats();
    assert!(
        stats.interrupted_blocked >= CYCLES / 2,
        "the cycles did not actually interrupt sleeping threads \
         (interrupted_blocked = {})",
        stats.interrupted_blocked
    );
    assert!(
        stats.max_sleeper_heap < 64,
        "sleeper heap grew without bound: high-water {} after {} cycles",
        stats.max_sleeper_heap,
        CYCLES
    );
    assert!(
        stats.max_thread_slots < 64,
        "thread table grew without bound: high-water {} slots after {} cycles",
        stats.max_thread_slots,
        CYCLES
    );
}

/// A mass cancellation: 1k threads all asleep at once, then a kill storm
/// interrupts every one of them. Each kill lazily invalidates a timer-
/// wheel entry; the >half-stale compaction must evict the pile long
/// before its 1-second wake time, and the wheel must hold zero entries
/// once the run has quiesced.
#[test]
fn interrupting_1k_sleepers_leaves_an_empty_timer_wheel() {
    const SLEEPERS: usize = 1_000;
    let mut rt = Runtime::new();
    let mut spawn: Io<Vec<ThreadId>> = Io::pure(Vec::new());
    for _ in 0..SLEEPERS {
        spawn = spawn.and_then(|mut tids| {
            Io::fork(Io::sleep(1_000_000).catch(|_| Io::unit())).map(move |tid| {
                tids.push(tid);
                tids
            })
        });
    }
    let prog = spawn.and_then(|tids| {
        // Park main briefly so every child reaches its sleep; the wheel
        // high-water is then all 1k children plus main's own entry.
        Io::sleep(5)
            .then({
                let mut kills = Io::unit();
                for tid in tids {
                    kills = kills.then(Io::throw_to(tid, Exception::kill_thread()));
                }
                kills
            })
            // One more short sleep: had compaction not evicted the 1k
            // stale entries, this insert would find them still filed and
            // push the high-water past its phase-1 value.
            .then(Io::sleep(10))
    });
    rt.run(prog).unwrap();
    let stats = rt.stats();
    assert_eq!(
        stats.interrupted_blocked, SLEEPERS as u64,
        "every kill should interrupt a sleeping thread"
    );
    assert_eq!(
        stats.max_sleeper_heap,
        SLEEPERS + 1,
        "wheel high-water should be the 1k sleepers + main, and the \
         post-storm sleep must not see the stale pile still filed"
    );
    assert_eq!(
        rt.clock(),
        15,
        "no stale entry may advance the clock toward the dead 1s wakes"
    );
    assert_eq!(
        rt.sleeper_queue_len(),
        0,
        "timer wheel must hold zero entries after quiesce"
    );
}

// ---------------------------------------------------------------------
// Throwing at dead (and reclaimed) threads
// ---------------------------------------------------------------------

/// §5: an asynchronous `throwTo` at a thread that already finished is a
/// no-op; nothing is delivered anywhere.
#[test]
fn async_throw_to_a_finished_thread_is_a_no_op() {
    let mut rt = Runtime::new();
    let prog = Io::fork(Io::unit()).and_then(|child| {
        Io::sleep(1) // the child finishes during the sleep
            .then(Io::throw_to(child, Exception::kill_thread()))
            .then(Io::pure(7_i64))
    });
    assert_eq!(rt.run(prog).unwrap(), 7);
    let stats = rt.stats();
    assert_eq!(stats.finished_threads, 2, "main + child finish normally");
    assert_eq!(
        stats.async_deliveries + stats.interrupted_blocked,
        0,
        "the exception aimed at the dead thread must not land anywhere"
    );
}

/// The finished thread's slot is reclaimed and reused by a live thread;
/// the old `ThreadId` must *not* alias the new occupant (its generation
/// differs), so the kill is still a no-op and the new thread survives.
#[test]
fn async_throw_to_a_dead_and_reused_slot_spares_the_new_occupant() {
    let mut rt = Runtime::new();
    let prog = Io::new_empty_mvar::<i64>().and_then(|m| {
        Io::new_empty_mvar::<i64>().and_then(move |done| {
            Io::fork(Io::unit()).and_then(move |ghost| {
                Io::sleep(1) // the ghost finishes; its slot is freed
                    .then(Io::fork(m.take().and_then(move |v| done.put(v))))
                    .then(Io::throw_to(ghost, Exception::kill_thread()))
                    .then(m.put(42))
                    .then(done.take())
            })
        })
    });
    assert_eq!(rt.run(prog).unwrap(), 42);
    // Exactly two slots ever existed concurrently (main + one child), so
    // the second child really did reuse the ghost's slot: the test
    // genuinely exercises the generation check, not just a missing slot.
    assert_eq!(rt.stats().max_thread_slots, 2);
}

/// §9: the synchronous variant returns `()` without blocking when the
/// target is dead — again including a dead-and-reused slot.
#[test]
fn sync_throw_to_a_dead_or_reused_slot_returns_unit_without_blocking() {
    let mut rt = Runtime::new();
    let prog = Io::new_empty_mvar::<i64>().and_then(|m| {
        Io::new_empty_mvar::<i64>().and_then(move |done| {
            Io::fork(Io::unit()).and_then(move |ghost| {
                Io::sleep(1)
                    .then(Io::fork(m.take().and_then(move |v| done.put(v))))
                    // If this blocked (waiting for a "receipt" from a thread
                    // that will never exist again), the run would deadlock.
                    .then(Io::throw_to_sync(ghost, Exception::kill_thread()))
                    .then(m.put(8))
                    .then(done.take())
            })
        })
    });
    assert_eq!(rt.run(prog).unwrap(), 8);
    assert_eq!(rt.stats().max_thread_slots, 2);
}

// ---------------------------------------------------------------------
// Masked synchronous self-throw
// ---------------------------------------------------------------------

/// §9's special case: `throwTo` (sync) to oneself raises *immediately*,
/// even under `block` — the mask defers delivery of queued asynchronous
/// exceptions, but a self-throw never queues. The raise must carry the
/// asynchronous origin, since it arrived via `throwTo`.
#[test]
fn masked_self_sync_throw_raises_immediately_with_async_origin() {
    let mut rt = Runtime::new();
    let prog = Io::<i64>::block(
        Io::my_thread_id()
            .and_then(|me| Io::throw_to_sync(me, Exception::kill_thread()))
            // Unreachable: the self-throw raises before this runs.
            .then(Io::pure(0_i64)),
    )
    .catch_info(|e, origin| {
        assert_eq!(origin, RaiseOrigin::Async, "self-throw must look async");
        assert_eq!(e.to_string(), "KillThread");
        Io::pure(1_i64)
    });
    assert_eq!(rt.run(prog).unwrap(), 1);
    assert_eq!(rt.stats().catches, 1);
}

/// Contrast: an *asynchronous* self-throw under `block` is queued, not
/// raised — the thread keeps running until it unmasks.
#[test]
fn masked_self_async_throw_is_deferred_until_unmask() {
    let mut rt = Runtime::new();
    let prog = Io::<i64>::block(
        Io::my_thread_id()
            .and_then(|me| Io::throw_to(me, Exception::kill_thread()))
            // Still reachable: the async self-throw only queued the
            // exception and the mask holds it back.
            .then(Io::pure(10_i64)),
    )
    .catch_info(|_, origin| {
        assert_eq!(origin, RaiseOrigin::Async);
        Io::pure(-1_i64)
    });
    // After `block` exits, the pending kill lands before the catch frame
    // is popped, so the handler runs.
    assert_eq!(rt.run(prog).unwrap(), -1);
}

// ---------------------------------------------------------------------
// Cross-shard throwTo at dead and reused slots (the parallel plane)
// ---------------------------------------------------------------------

/// The dead-and-reused-slot guarantee crosses the channel plane: a
/// `ShardCtx::throw_to` relayed from a *remote* shard and delivered at
/// the destination's epoch barrier must still be a no-op when the
/// target `ThreadId` names a thread that has since died — even though
/// a new occupant has reused its table slot. The generation tag, not
/// the slot index, is the identity the barrier delivery checks.
///
/// Shard 1 forks a ghost, lets it die, forks a new occupant into the
/// freed slot, and only then ships the ghost's id to shard 0, which
/// relays a kill back. The ack message is sequenced *after* the throw
/// (same source, ascending seq), so when shard 1's `recv` returns, the
/// stale kill has already been drained at the same barrier. If the old
/// id aliased the new occupant, the occupant would die holding the
/// `MVar` and the run would deadlock instead of returning 42.
#[test]
fn cross_shard_throw_to_a_dead_and_reused_slot_spares_the_new_occupant() {
    use conch_runtime::parallel::{MultiConfig, MultiRuntime, ShardCtx, ShardProgram};
    use conch_runtime::value::Value;

    let programs: Vec<ShardProgram> = vec![
        // Shard 0: the relay — kill whatever id shard 1 reports, then
        // ack so shard 1 knows the kill has been drained.
        Box::new(|ctx: &ShardCtx| {
            let ctx = ctx.clone();
            ctx.clone().recv().and_then(move |v| {
                let ghost = v.as_thread_id().expect("ghost tid");
                ctx.clone()
                    .throw_to(1, ghost, Exception::kill_thread())
                    .then(ctx.send(1, Value::Int(0)))
                    .map(|()| Value::Int(0))
            })
        }),
        // Shard 1: the victim shard with the reused slot.
        Box::new(|ctx: &ShardCtx| {
            let ctx = ctx.clone();
            Io::new_empty_mvar::<i64>().and_then(move |m| {
                Io::new_empty_mvar::<i64>().and_then(move |done| {
                    Io::fork(Io::unit()).and_then(move |ghost| {
                        Io::sleep(1) // the ghost finishes; its slot is freed
                            .then(Io::fork(m.take().and_then(move |v| done.put(v))))
                            .then(ctx.clone().send(0, Value::ThreadId(ghost)))
                            .then(ctx.recv()) // the kill is drained by now
                            .then(m.put(42))
                            .then(done.take())
                            .map(Value::Int)
                    })
                })
            })
        }),
    ];
    let report = MultiRuntime::new(MultiConfig {
        epoch_us: 100,
        ..MultiConfig::default()
    })
    .run(programs);
    assert_eq!(report.shards[0].result, Ok(Value::Int(0)));
    assert_eq!(
        report.shards[1].result,
        Ok(Value::Int(42)),
        "the new occupant must survive the stale cross-shard kill"
    );
    // Shard 1 never held more than two live slots (main + one child),
    // so the occupant genuinely reused the ghost's slot — the test
    // exercises the generation check, not a missing slot.
    assert_eq!(report.shards[1].stats.max_thread_slots, 2);
    // Three messages crossed the plane: tid, throw, ack — the throw
    // logged between the two data messages.
    assert_eq!(report.messages, 3);
    assert!(
        report.drain_log.iter().any(|l| l.contains("throw")),
        "{:?}",
        report.drain_log
    );
}
