//! DPOR soundness corpus: dynamic partial-order reduction must be a
//! pure *reduction* — fewer executed schedules, identical verdicts.
//!
//! Every program below is explored twice, under `Reduction::SleepSets`
//! and `Reduction::Dpor`, asserting:
//!
//! * the same pass/fail verdict, and on failure the same message and
//!   the byte-identical shrunk certificate;
//! * the identical set of observable outcomes (result + console
//!   output) across all explored schedules — Mazurkiewicz-equivalent
//!   traces agree on both, so dropping redundant interleavings must
//!   not lose (or invent) behaviours;
//! * DPOR explores no more schedules than sleep sets;
//! * the incremental sparse-clock race analysis (the default) and the
//!   legacy full-recompute analysis
//!   ([`ExploreConfig::legacy_race_analysis`]) agree bit-for-bit on
//!   every coverage counter — explored, pruned, races detected,
//!   backtracks installed — at workers 1 and 4.
//!
//! The corpus covers the paper's load-bearing cases: the §5.3
//! `block(takeMVar)` atomicity argument, §7.1 `bracket` (plus a
//! seeded-bug variant whose failure must be found, shrunk and reported
//! identically), the §7.2 `both`/`either` combinators, asynchronous
//! delivery-point programs, plain MVar/console races, and the
//! `conch-actors` layer (mailbox backpressure, monitor
//! registration/death races, link cascades).

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::rc::Rc;

use conch_actors::{link, monitor, spawn_actor, ActorRef, Down, Mailbox};
use conch_combinators::{both, bracket, race, timeout, Either};
use conch_explore::{ExploreConfig, Explorer, Reduction, RunOutcome, Strategy, TestCase};
use conch_runtime::exception::ExitReason;
use conch_runtime::prelude::*;
use conch_runtime::value::{FromValue, Value};

/// Everything one exploration of one corpus program produced.
struct ModeResult {
    outcomes: BTreeSet<String>,
    explored: usize,
    pruned: usize,
    races_detected: u64,
    backtracks_installed: u64,
    complete: bool,
    /// `(message, shrunk schedule, original schedule)` on failure.
    failure: Option<(String, String, String)>,
}

fn run_mode<T: FromValue + Debug + 'static>(
    reduction: Reduction,
    max_schedules: usize,
    preemption_bound: Option<usize>,
    program: fn() -> Io<T>,
    fail_if: fn(&RunOutcome<T>) -> Option<String>,
) -> ModeResult {
    let outcomes: Rc<RefCell<BTreeSet<String>>> = Rc::new(RefCell::new(BTreeSet::new()));
    // Depth and step budgets are raised above the defaults for the
    // actor-layer programs, whose polling mailboxes run longer threads;
    // programs that fit the defaults explore identically (the limits
    // only matter when hit, and every passing corpus run is `complete`).
    let cfg = ExploreConfig {
        max_schedules,
        max_depth: 512,
        step_budget: 100_000,
        preemption_bound,
        strategy: Strategy::Exhaustive(reduction),
        ..ExploreConfig::default()
    };
    let result = Explorer::with_config(cfg).check(|| {
        let outcomes = Rc::clone(&outcomes);
        TestCase::new(program(), move |out: &RunOutcome<T>| {
            outcomes
                .borrow_mut()
                .insert(format!("{:?} | {:?}", out.result, out.output));
            match fail_if(out) {
                Some(msg) => Err(msg),
                None => Ok(()),
            }
        })
    });
    let report = result.report().clone();
    let seen = outcomes.borrow().clone();
    ModeResult {
        outcomes: seen,
        explored: report.explored,
        pruned: report.pruned,
        races_detected: report.stats.races_detected,
        backtracks_installed: report.stats.backtracks_installed,
        complete: report.complete,
        failure: result.failure().map(|f| {
            (
                f.message.clone(),
                f.schedule.to_string(),
                f.original.to_string(),
            )
        }),
    }
}

/// One DPOR exploration's coverage counters under an explicit analysis
/// path (legacy full recompute vs incremental) and worker count.
/// Worker counts above 1 go through [`Explorer::check_parallel_exact`]
/// so the test genuinely exercises that many OS threads even on a
/// small CI box (the public `check_parallel` clamps to the machine).
fn dpor_counters<T: FromValue + Debug + 'static>(
    max_schedules: usize,
    preemption_bound: Option<usize>,
    legacy_race_analysis: bool,
    workers: usize,
    program: fn() -> Io<T>,
    fail_if: fn(&RunOutcome<T>) -> Option<String>,
) -> (usize, usize, u64, u64) {
    let cfg = ExploreConfig {
        max_schedules,
        max_depth: 512,
        step_budget: 100_000,
        preemption_bound,
        strategy: Strategy::Exhaustive(Reduction::Dpor),
        legacy_race_analysis,
        ..ExploreConfig::default()
    };
    let explorer = Explorer::with_config(cfg);
    let factory = move || {
        TestCase::new(program(), move |out: &RunOutcome<T>| match fail_if(out) {
            Some(msg) => Err(msg),
            None => Ok(()),
        })
    };
    let result = if workers == 1 {
        explorer.check(factory)
    } else {
        explorer.check_parallel_exact(workers, factory)
    };
    let report = result.report();
    (
        report.explored,
        report.pruned,
        report.stats.races_detected,
        report.stats.backtracks_installed,
    )
}

/// Explore `program` under both reductions and assert DPOR changed
/// nothing but the schedule count.
fn assert_equiv<T: FromValue + Debug + 'static>(
    name: &str,
    max_schedules: usize,
    program: fn() -> Io<T>,
    fail_if: fn(&RunOutcome<T>) -> Option<String>,
) {
    assert_equiv_bounded(name, max_schedules, None, program, fail_if);
}

/// Like [`assert_equiv`], but compares the two reductions under an
/// identical preemption bound. Used for corpus programs whose unbounded
/// sleep-set space is intractable (nested timeouts spawn five threads);
/// the equivalence obligation is unchanged — same verdict, same
/// behaviours, no extra schedules — just over the bounded space both
/// modes share. Exception-delivery points branch fully regardless of
/// the bound, so the asynchronous-exception dimension stays exhaustive.
fn assert_equiv_bounded<T: FromValue + Debug + 'static>(
    name: &str,
    max_schedules: usize,
    bound: Option<usize>,
    program: fn() -> Io<T>,
    fail_if: fn(&RunOutcome<T>) -> Option<String>,
) {
    let sleep = run_mode(Reduction::SleepSets, max_schedules, bound, program, fail_if);
    let dpor = run_mode(Reduction::Dpor, max_schedules, bound, program, fail_if);
    // A failing exploration is never `complete` (it reports coverage up
    // to the failure); only passing corpus runs must be exhaustive.
    if sleep.failure.is_none() || dpor.failure.is_none() {
        assert!(
            sleep.complete && dpor.complete,
            "{name}: corpus programs must be exhaustively explorable \
             (sleep {}, dpor {})",
            sleep.complete,
            dpor.complete
        );
    }
    assert_eq!(
        sleep.failure.is_some(),
        dpor.failure.is_some(),
        "{name}: verdict diverged"
    );
    if let (Some(s), Some(d)) = (&sleep.failure, &dpor.failure) {
        assert_eq!(s.0, d.0, "{name}: failure message diverged");
        assert_eq!(s.1, d.1, "{name}: shrunk certificate diverged");
    }
    // On a failure each mode stops at its first failing run, so the
    // outcome sets are legitimately partial; only passing (complete)
    // explorations must agree on the full behaviour set.
    if sleep.failure.is_none() {
        assert_eq!(
            sleep.outcomes, dpor.outcomes,
            "{name}: observable behaviours diverged"
        );
    }
    // The schedule-count comparison only makes sense on passes: a
    // failing sleep-set DFS stops at its first failing run, while DPOR
    // deliberately drains its whole fixpoint so the certificate stays
    // a deterministic function of the run set (see `crates/explore`).
    if sleep.failure.is_none() {
        assert!(
            dpor.explored <= sleep.explored,
            "{name}: DPOR explored more ({}) than sleep sets ({})",
            dpor.explored,
            sleep.explored
        );
    }
    // The incremental sparse-clock analysis must be indistinguishable
    // from the legacy full recompute, and both must be independent of
    // the worker count: every coverage counter bit-identical across the
    // four (analysis path × workers) combinations.
    let reference = (
        dpor.explored,
        dpor.pruned,
        dpor.races_detected,
        dpor.backtracks_installed,
    );
    for (legacy, workers) in [(true, 1), (true, 4), (false, 4)] {
        let got = dpor_counters(max_schedules, bound, legacy, workers, program, fail_if);
        assert_eq!(
            got, reference,
            "{name}: DPOR counters diverged (legacy={legacy}, workers={workers})"
        );
    }
}

fn no_failure<T>(_: &RunOutcome<T>) -> Option<String> {
    None
}

// ------------------------------------------- sampling detection harness
//
// PCT sampling must *find* the corpus's seeded bugs — not exhaustively,
// but within a pinned sample budget at a pinned seed, so the assertion
// is deterministic — and the sampled failure must flow through the very
// same certificate machinery as an exhaustive one: the original
// schedule replays the failure in a default (exhaustive-configured)
// explorer, and shrinking lands on the byte-identical minimal
// certificate the sleep-set DFS produces.

/// Sample `program` under `Strategy::Pct` and assert the seeded bug is
/// found within `budget` samples, the certificate replays through the
/// exhaustive machinery, and the shrunk certificate matches the
/// sleep-set reference byte for byte.
fn assert_pct_detects<T: FromValue + Debug + 'static>(
    name: &str,
    depth: usize,
    seed: u64,
    budget: usize,
    program: fn() -> Io<T>,
    fail_if: fn(&RunOutcome<T>) -> Option<String>,
) {
    let case = move || {
        TestCase::new(program(), move |out: &RunOutcome<T>| match fail_if(out) {
            Some(msg) => Err(msg),
            None => Ok(()),
        })
    };
    let sampled = Explorer::with_config(ExploreConfig {
        max_schedules: budget,
        max_depth: 512,
        step_budget: 100_000,
        strategy: Strategy::Pct { depth, seed },
        ..ExploreConfig::default()
    })
    .check(case);
    let failure = sampled.expect_fail();
    let index = failure
        .report
        .first_failing_sample
        .expect("{name}: sampled failures carry their sample index");
    assert!(
        (index as usize) < budget,
        "{name}: first failing sample {index} outside the pinned budget {budget}"
    );
    // Byte-compatibility: an exhaustive-configured explorer replays
    // both certificates — the schedules mention only branch points the
    // enumerator also sees.
    let exhaustive = || {
        Explorer::with_config(ExploreConfig {
            max_schedules: 100_000,
            max_depth: 512,
            step_budget: 100_000,
            ..ExploreConfig::default()
        })
    };
    for schedule in [&failure.original, &failure.schedule] {
        let (_, check) = exhaustive().replay(case(), schedule);
        assert!(
            check.is_err(),
            "{name}: certificate {schedule} must replay the failure exhaustively"
        );
    }
    // And the shrunk certificate is the one the exhaustive search
    // produces: shrinking normalizes whatever sample tripped first down
    // to the same minimal counterexample.
    let reference = exhaustive().check(case);
    let reference = reference.expect_fail();
    assert_eq!(
        failure.schedule, reference.schedule,
        "{name}: sampled shrunk certificate diverged from the exhaustive one"
    );
    assert_eq!(failure.message, reference.message);
}

#[test]
fn pct_detects_output_race() {
    assert_pct_detects("output_race", 3, 0xC0FFEE, 64, output_race, |out| {
        (out.output == "ba").then(|| "child won the race".to_owned())
    });
}

#[test]
fn pct_detects_broken_bracket_leak() {
    // Depth 4 at this seed lands on a sample whose greedy shrink
    // reaches the global minimum (`t1.t1`); shallower streams find the
    // leak just as fast but shrink into a longer local minimum, which
    // would break the byte-equality obligation below.
    assert_pct_detects(
        "broken_bracket",
        4,
        0x63,
        128,
        broken_bracket_under_kill,
        |out| {
            let a = out.output.matches('a').count();
            let r = out.output.matches('r').count();
            (a != r).then(|| format!("leak: acquired {a}, released {r}"))
        },
    );
}

#[test]
fn swarm_detects_the_seeded_bugs_too() {
    // Swarm runs interleaved PCT streams at varied depths; at a pinned
    // seed vector it must still land on both corpus bugs within the
    // same order-of-magnitude budget.
    let strategies = Strategy::Swarm {
        seeds: vec![0xC0FFEE, 0xC0FFEF, 0xC0FFF0, 0xC0FFF1],
    };
    let sampled = Explorer::with_config(ExploreConfig {
        max_schedules: 256,
        max_depth: 512,
        step_budget: 100_000,
        strategy: strategies,
        ..ExploreConfig::default()
    })
    .check(|| {
        TestCase::new(broken_bracket_under_kill(), |out: &RunOutcome<i64>| {
            let a = out.output.matches('a').count();
            let r = out.output.matches('r').count();
            if a != r {
                Err(format!("leak: acquired {a}, released {r}"))
            } else {
                Ok(())
            }
        })
    });
    let failure = sampled.expect_fail();
    assert!(failure.report.first_failing_sample.is_some());
}

// --------------------------------------------------------------- corpus

/// 1. The classic two-thread console race.
fn output_race() -> Io<()> {
    Io::fork(Io::put_char('b'))
        .then(Io::put_char('a'))
        .then(Io::sleep(1))
}

#[test]
fn corpus_output_race() {
    assert_equiv("output_race", 10_000, output_race, no_failure);
}

/// 2. The same race as a seeded failure: both engines must find it,
///    report the same message, and shrink to the same certificate.
#[test]
fn corpus_output_race_failing() {
    assert_equiv("output_race_failing", 10_000, output_race, |out| {
        (out.output == "ba").then(|| "child won the race".to_owned())
    });
}

/// 3. The G5 golden workload: two MVar writers racing a reader plus an
///    async kill (448 schedules under sleep sets).
fn three_way_race() -> Io<i64> {
    Io::new_empty_mvar::<i64>().and_then(|m| {
        Io::fork(m.put(1))
            .then(Io::fork(m.put(2)))
            .and_then(move |t2| {
                Io::throw_to(t2, Exception::kill_thread())
                    .then(m.take())
                    .catch(|_| Io::pure(-1))
            })
    })
}

#[test]
fn corpus_three_way_race() {
    assert_equiv("three_way_race", 10_000, three_way_race, no_failure);
}

/// 4. Two independent MVar pairs — the sleep-set showcase; DPOR must
///    not regress it.
fn independent_pairs() -> Io<i64> {
    Io::new_empty_mvar::<i64>().and_then(|a| {
        Io::new_empty_mvar::<i64>().and_then(move |b| {
            Io::fork(a.put(1))
                .then(Io::fork(b.put(2)))
                .then(a.take())
                .and_then(move |x| b.take().map(move |y| x + y))
        })
    })
}

#[test]
fn corpus_independent_pairs() {
    assert_equiv(
        "independent_pairs",
        10_000,
        independent_pairs,
        |out| match out.result {
            Ok(3) => None,
            ref other => Some(format!("expected Ok(3), got {other:?}")),
        },
    );
}

/// 5. §5.3: `block (takeMVar m)` on a full MVar is atomic — no
///    delivery point may split the take from its continuation.
fn block_take() -> Io<(i64, bool)> {
    Io::new_mvar(7_i64).and_then(|m| {
        Io::my_thread_id().and_then(move |me| {
            Io::fork(Io::throw_to(me, Exception::kill_thread()))
                .then(Io::block(
                    m.take().and_then(|v| Io::put_char('t').map(move |_| v)),
                ))
                .catch(|_| Io::pure(-1))
                .and_then(move |r| m.try_take().map(move |left| (r, left.is_some())))
        })
    })
}

#[test]
fn corpus_block_take_atomicity() {
    assert_equiv("block_take", 10_000, block_take, |out| match &out.result {
        Ok((_, still_full)) => {
            let took = out.output.contains('t');
            if took && *still_full {
                Some("'t' printed but the MVar still holds a value".into())
            } else if !took && !*still_full {
                Some("MVar drained without completing block(takeMVar)".into())
            } else {
                None
            }
        }
        Err(RunError::Uncaught(_)) => None,
        Err(e) => Some(e.to_string()),
    });
}

/// 6. §7.1: a correct `bracket` under an async kill releases on every
///    schedule.
fn good_bracket_under_kill() -> Io<i64> {
    let body = bracket(
        Io::put_char('a').map(|_| 0_i64),
        |_| Io::put_char('r'),
        |_| Io::pure(1_i64),
    );
    Io::fork(body.map(|_| ()).catch(|_| Io::unit()))
        .and_then(|w| Io::throw_to(w, Exception::kill_thread()))
        .then(Io::sleep(1))
        .map(|_| 0)
}

#[test]
fn corpus_good_bracket() {
    assert_equiv("good_bracket", 50_000, good_bracket_under_kill, |out| {
        let a = out.output.matches('a').count();
        let r = out.output.matches('r').count();
        (a != r).then(|| format!("acquired {a} but released {r} (output {:?})", out.output))
    });
}

/// 7. §7.1 seeded bug: the acquire runs *outside* the protected
///    region, so a kill landing right after it leaks the resource. Both
///    engines must catch it identically.
fn broken_bracket_under_kill() -> Io<i64> {
    let body = Io::put_char('a').map(|_| 0_i64).and_then(|_| {
        Io::block(
            Io::unblock(Io::pure(1_i64))
                .catch(|e| Io::put_char('r').then(Io::throw(e)))
                .and_then(|v| Io::put_char('r').map(move |_| v)),
        )
    });
    Io::fork(body.map(|_| ()).catch(|_| Io::unit()))
        .and_then(|w| Io::throw_to(w, Exception::kill_thread()))
        .then(Io::sleep(1))
        .map(|_| 0)
}

#[test]
fn corpus_broken_bracket_seeded_bug() {
    assert_equiv("broken_bracket", 50_000, broken_bracket_under_kill, |out| {
        let a = out.output.matches('a').count();
        let r = out.output.matches('r').count();
        (a != r).then(|| format!("leak: acquired {a}, released {r}"))
    });
}

/// 8. §7.2 `both`: the pair always materializes, both child orders
///    reachable.
fn both_pair() -> Io<(i64, i64)> {
    both(
        Io::put_char('x').map(|_| 1_i64),
        Io::put_char('y').map(|_| 2_i64),
    )
}

#[test]
fn corpus_both() {
    assert_equiv("both", 50_000, both_pair, |out| match &out.result {
        Ok((1, 2)) => None,
        other => Some(format!("expected Ok((1, 2)), got {other:?}")),
    });
}

/// 9. §7.2 `either`/`race`: exactly one winner on every schedule.
fn either_race() -> Io<Either<char, char>> {
    race(Io::pure('l'), Io::pure('r'))
}

#[test]
fn corpus_either() {
    assert_equiv("either", 100_000, either_race, |out| match &out.result {
        Ok(Either::Left('l')) | Ok(Either::Right('r')) => None,
        other => Some(format!("race produced {other:?}")),
    });
}

/// 10. Delivery points under `block`/`unblock`: the kill may land at
///     several distinct unmasked points (or never); DPOR must see every
///     landing site the full exploration sees.
fn masked_delivery() -> Io<i64> {
    Io::my_thread_id().and_then(|me| {
        Io::fork(Io::throw_to(me, Exception::kill_thread()))
            .then(Io::block(Io::put_char('x').then(Io::put_char('y'))))
            .then(Io::put_char('z'))
            .map(|_| 0_i64)
            .catch(|_| Io::pure(1_i64))
    })
}

#[test]
fn corpus_masked_delivery() {
    assert_equiv("masked_delivery", 10_000, masked_delivery, no_failure);
}

/// 11. A throwTo aimed at a worker blocked on an MVar — the
///     blocked-target dependence rule (the delivery races with the wake-up,
///     not with the target's last executed step).
fn kill_blocked_worker() -> Io<i64> {
    Io::new_empty_mvar::<i64>().and_then(|m| {
        Io::fork(m.take().map(|_| ()).catch(|_| Io::unit())).and_then(move |w| {
            Io::fork(m.put(5))
                .then(Io::throw_to(w, Exception::kill_thread()))
                .then(Io::sleep(2))
                .then(m.try_take().map(|v| v.unwrap_or(-1)))
        })
    })
}

#[test]
fn corpus_kill_blocked_worker() {
    assert_equiv(
        "kill_blocked_worker",
        50_000,
        kill_blocked_worker,
        no_failure,
    );
}

/// 12. §7.3 degenerate budget: `timeout 0` races `sleep 0` against an
///     instant computation. Which side wins is a pure scheduling choice,
///     but on *no* schedule may any timeout exception escape — the §7.3
///     construction has no timeout exception to leak.
fn timeout_zero() -> Io<Option<i64>> {
    timeout(0, Io::pure(7_i64))
}

#[test]
fn corpus_timeout_zero() {
    assert_equiv("timeout_zero", 100_000, timeout_zero, |out| {
        match &out.result {
            Ok(None) | Ok(Some(7)) => None,
            other => Some(format!("timeout(0, pure 7) produced {other:?}")),
        }
    });
}

/// 13. §7.3 nested timeouts, outer tighter (a < b): the action cannot
///     beat the outer clock, so the outer `None` must win on every
///     schedule — the inner timeout's machinery (its own racer, sleeper
///     and kills) must never garble the outer verdict.
fn nested_timeout_outer_tight() -> Io<Option<Option<i64>>> {
    timeout(5, timeout(50, Io::sleep(10).map(|_| 7_i64)))
}

#[test]
fn corpus_nested_timeout_outer_tight() {
    assert_equiv_bounded(
        "nested_timeout_outer_tight",
        500_000,
        Some(2),
        nested_timeout_outer_tight,
        |out| match &out.result {
            Ok(None) => None,
            other => Some(format!("outer timeout must fire first, got {other:?}")),
        },
    );
}

/// 14. §7.3 nested timeouts, equal budgets (a == b) with an instant
///     action: the action beats both clocks, so the inner result must
///     come through intact (`Some(Some(7))`) on every schedule — virtual
///     time cannot advance while the action is runnable.
fn nested_timeout_inner_wins() -> Io<Option<Option<i64>>> {
    timeout(5, timeout(5, Io::pure(7_i64)))
}

#[test]
fn corpus_nested_timeout_inner_wins() {
    assert_equiv_bounded(
        "nested_timeout_inner_wins",
        500_000,
        Some(2),
        nested_timeout_inner_wins,
        |out| match &out.result {
            Ok(Some(Some(7))) => None,
            other => Some(format!("inner result must win, got {other:?}")),
        },
    );
}

// ----------------------------------------------------- actor-layer corpus
//
// The `conch-actors` programs fork actor shells with polling mailboxes,
// so their unbounded sleep-set spaces are intractable; like the nested
// timeouts they are compared under preemption bound 2 (exception
// delivery and mailbox hand-offs still branch fully).

/// Polls until the actor commits an exit reason, coded as an integer
/// (0 normal, 1 killed, 2 crashed by exit signal, 3 crashed).
fn actor_exit_code(a: ActorRef<Value>) -> Io<i64> {
    a.exit_reason().and_then(move |r| match r {
        Some(ExitReason::Normal) => Io::pure(0),
        Some(ExitReason::Killed) => Io::pure(1),
        Some(ExitReason::Crashed(e)) if e.is_exit_signal() => Io::pure(2),
        Some(ExitReason::Crashed(_)) => Io::pure(3),
        None => Io::sleep(25).then(actor_exit_code(a)),
    })
}

/// 15. Mailbox backpressure race: two producers into a capacity-1
///     mailbox — the loser polls for the free slot — and the consumer
///     drains both. Both messages must arrive on every schedule,
///     whichever producer wins the slot.
fn actor_mailbox_race() -> Io<i64> {
    Mailbox::<i64>::new(1).and_then(|mb| {
        Io::fork(mb.send(1))
            .then(Io::fork(mb.send(2)))
            .then(mb.recv())
            .and_then(move |x: i64| mb.recv().map(move |y: i64| x + y))
    })
}

#[test]
fn corpus_actor_mailbox_race() {
    assert_equiv_bounded(
        "actor_mailbox_race",
        500_000,
        Some(2),
        actor_mailbox_race,
        |out| match &out.result {
            Ok(3) => None,
            other => Some(format!("both messages must arrive, got {other:?}")),
        },
    );
}

/// 16. Monitor registration racing the target's death: the actor exits
///     immediately, so `monitor` may find it alive (Down delivered on
///     death) or already dead (Down delivered retroactively). Either
///     way exactly one Down with the caller's reference arrives.
fn actor_monitor_race() -> Io<i64> {
    Mailbox::<Down>::new(2).and_then(|watcher| {
        spawn_actor(1, |_mb: Mailbox<i64>| Io::unit()).and_then(move |a| {
            monitor(&a, watcher, 11).then(watcher.recv().map(|down: Down| down.mref))
        })
    })
}

#[test]
fn corpus_actor_monitor_race() {
    assert_equiv_bounded(
        "actor_monitor_race",
        500_000,
        Some(2),
        actor_monitor_race,
        |out| match &out.result {
            Ok(11) => None,
            other => Some(format!("expected the Down(mref 11), got {other:?}")),
        },
    );
}

/// 17. Link cascade: `a` crashes while `b` is blocked in `recv`; the
///     link turns `a`'s crash into an exit signal, so `b` dies
///     crashed-by-signal (code 2) on every schedule — whichever side of
///     the link registration the crash lands on.
fn actor_link_cascade() -> Io<i64> {
    spawn_actor(1, |mb: Mailbox<i64>| mb.recv().map(|_: i64| ())).and_then(|b| {
        spawn_actor(1, |_mb: Mailbox<i64>| {
            Io::throw(Exception::error_call("crash"))
        })
        .and_then(move |a| link(&a, &b).then(actor_exit_code(b.erase())))
    })
}

#[test]
fn corpus_actor_link_cascade() {
    assert_equiv_bounded(
        "actor_link_cascade",
        500_000,
        Some(2),
        actor_link_cascade,
        |out| match &out.result {
            Ok(2) => None,
            other => Some(format!(
                "peer must die crashed-by-signal (2), got {other:?}"
            )),
        },
    );
}
