//! Safe locking with `MVar`s (§5.1–§5.3).
//!
//! An `MVar` holding the current state is Concurrent Haskell's standard
//! lock. The paper's §5.1 develops the exception-safe update pattern in
//! three stages:
//!
//! 1. [`modify_mvar_naive`] — safe against *synchronous* exceptions only.
//!    There is a race window between `takeMVar` and `catch` during which
//!    an asynchronous exception loses the lock forever. Provided here so
//!    tests and benches can demonstrate the race the paper describes.
//! 2. [`modify_mvar`] — the fixed version with scoped `block`/`unblock`
//!    (§5.2) and the interruptible `takeMVar` (§5.3): no window remains,
//!    and the thread does not wait for the lock in an uninterruptible
//!    state.
//! 3. [`modify_mvar_masked`] — the §7.4 variant for directly-mutable
//!    structures, which omits `unblock` around the user function entirely
//!    (use [`crate::safe_point`] inside long computations).

use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::value::{FromValue, IntoValue};

/// The paper's *broken* locking pattern (§5.1):
///
/// ```haskell
/// do a <- takeMVar m
///    b <- catch (compute a) (\e -> do putMVar m a; throw e)
///    putMVar m b
/// ```
///
/// Correct for synchronous exceptions; **unsafe** for asynchronous ones —
/// an exception arriving between `takeMVar` and `catch` (or between
/// `catch` and the final `putMVar`) leaves the `MVar` empty and deadlocks
/// later users. Kept as the baseline that motivates `block`/`unblock`.
pub fn modify_mvar_naive<T, F>(m: MVar<T>, compute: F) -> Io<()>
where
    T: FromValue + IntoValue + Clone + 'static,
    F: FnOnce(T) -> Io<T> + 'static,
{
    m.take().and_then(move |a| {
        let saved = a.clone();
        compute(a)
            .catch(move |e| m.put(saved).then(Io::throw(e)))
            .and_then(move |b| m.put(b))
    })
}

/// The paper's *safe* locking pattern (§5.2–§5.3):
///
/// ```haskell
/// block (do a <- takeMVar m
///           b <- catch (unblock (compute a))
///                      (\e -> do putMVar m a; throw e)
///           putMVar m b)
/// ```
///
/// The `takeMVar` is interruptible right up until it acquires the value
/// (so the thread never waits uninterruptibly while holding nothing), and
/// once acquired there is no window in which an asynchronous exception can
/// lose the lock: the handler's `putMVar` runs masked and — the `MVar`
/// being known empty — is itself non-interruptible.
pub fn modify_mvar<T, F>(m: MVar<T>, compute: F) -> Io<()>
where
    T: FromValue + IntoValue + Clone + 'static,
    F: FnOnce(T) -> Io<T> + 'static,
{
    Io::block(m.take().and_then(move |a| {
        let saved = a.clone();
        Io::unblock(compute(a))
            .catch(move |e| m.put(saved).then(Io::throw(e)))
            .and_then(move |b| m.put(b))
    }))
}

/// Safe locking that also returns a result alongside the new state.
///
/// The state function returns `(new_state, result)`; the `MVar` is
/// restored to its old value if the function raises.
pub fn modify_mvar_with<T, R, F>(m: MVar<T>, compute: F) -> Io<R>
where
    T: FromValue + IntoValue + Clone + 'static,
    R: FromValue + IntoValue + 'static,
    F: FnOnce(T) -> Io<(T, R)> + 'static,
{
    Io::block(m.take().and_then(move |a| {
        let saved = a.clone();
        Io::unblock(compute(a))
            .catch(move |e| m.put(saved).then(Io::throw(e)))
            .and_then(move |(b, r)| m.put(b).then(Io::pure(r)))
    }))
}

/// Runs `body` with the `MVar`'s value, restoring the *same* value after,
/// whether `body` succeeds or raises (`withMVar`).
pub fn with_mvar<T, R, F>(m: MVar<T>, body: F) -> Io<R>
where
    T: FromValue + IntoValue + Clone + 'static,
    R: FromValue + IntoValue + 'static,
    F: FnOnce(T) -> Io<R> + 'static,
{
    Io::block(m.take().and_then(move |a| {
        let restore_err = a.clone();
        let restore_ok = a.clone();
        Io::unblock(body(a))
            .catch(move |e| m.put(restore_err).then(Io::throw(e)))
            .and_then(move |r| m.put(restore_ok).then(Io::pure(r)))
    }))
}

/// The §7.4 variant for shared *mutable* structures: the update runs
/// entirely masked (no `unblock`), so the structure can never be observed
/// mid-mutation. Long computations should call [`crate::safe_point`]
/// at consistent states.
pub fn modify_mvar_masked<T, F>(m: MVar<T>, compute: F) -> Io<()>
where
    T: FromValue + IntoValue + Clone + 'static,
    F: FnOnce(T) -> Io<T> + 'static,
{
    Io::block(m.take().and_then(move |a| {
        let saved = a.clone();
        compute(a)
            .catch(move |e| m.put(saved).then(Io::throw(e)))
            .and_then(move |b| m.put(b))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_runtime::prelude::*;

    #[test]
    fn modify_mvar_updates_state() {
        let mut rt = Runtime::new();
        let prog =
            Io::new_mvar(10_i64).and_then(|m| modify_mvar(m, |n| Io::pure(n + 5)).then(m.take()));
        assert_eq!(rt.run(prog).unwrap(), 15);
    }

    #[test]
    fn modify_mvar_restores_on_sync_exception() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(10_i64).and_then(|m| {
            modify_mvar(m, |_| {
                Io::<i64>::throw(Exception::error_call("compute failed"))
            })
            .catch(|_| Io::unit())
            .then(m.take())
        });
        // Old state restored; a later take succeeds instead of deadlocking.
        assert_eq!(rt.run(prog).unwrap(), 10);
    }

    #[test]
    fn modify_mvar_with_returns_result() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(3_i64).and_then(|m| {
            modify_mvar_with(m, |n| Io::pure((n * 2, n)))
                .and_then(move |old| m.take().map(move |new| (old, new)))
        });
        assert_eq!(rt.run(prog).unwrap(), (3, 6));
    }

    #[test]
    fn with_mvar_restores_same_value() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(9_i64).and_then(|m| {
            with_mvar(m, |n| Io::pure(n * 100))
                .and_then(move |r| m.take().map(move |still| (r, still)))
        });
        assert_eq!(rt.run(prog).unwrap(), (900, 9));
    }

    #[test]
    fn with_mvar_restores_on_exception() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(9_i64).and_then(|m| {
            with_mvar(m, |_: i64| {
                Io::<i64>::throw(Exception::error_call("user code"))
            })
            .catch(|_| Io::pure(-1))
            .then(m.take())
        });
        assert_eq!(rt.run(prog).unwrap(), 9);
    }

    #[test]
    fn naive_version_loses_lock_under_async_exception() {
        // Reproduce the §5.1 race deterministically: the async exception
        // lands inside `compute`, *outside* naive's catch-installed window?
        // No — inside compute naive IS protected by catch. The hole is
        // between takeMVar and catch. We hit it by having the exception
        // pending (masked parent fork keeps ordering deterministic) and a
        // compute window that lets delivery happen after take but before
        // catch is installed.
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(1_i64).and_then(|m| {
            let worker = modify_mvar_naive(m, |n| Io::compute(1_000).then(Io::pure(n + 1)))
                .catch(|_| Io::unit());
            Io::fork(worker).and_then(move |w| {
                // Let the worker pass takeMVar, then kill it mid-compute?
                // mid-compute is protected; instead kill immediately after
                // take. With quantum 11 the worker's take happens within
                // its first quantum; the kill is queued while the worker
                // is between take and catch only if we time it there. We
                // conservatively assert the *observable* failure: the MVar
                // can end up empty, deadlocking the next take.
                Io::sleep(1)
                    .then(Io::throw_to(w, Exception::kill_thread()))
                    .then(Io::sleep(1))
                    .then(m.try_take())
            })
        });
        // We do not assert which interleaving occurred — only that the safe
        // version below never exhibits the empty-MVar outcome, while the
        // naive version *can*. This test documents the naive behaviour for
        // the default schedule: whatever happened, the program ends (no
        // deadlock of the main thread).
        let result = rt.run(prog).unwrap();
        // Either the worker finished/restored (Some) or the lock was lost
        // (None). Both are possible for the naive version depending on the
        // schedule; the integration tests sweep schedules to show the race.
        let _ = result;
    }

    #[test]
    fn safe_version_never_loses_lock_across_schedules() {
        // Sweep random schedules; with modify_mvar the MVar is always full
        // again after the dust settles.
        for seed in 0..40 {
            let cfg = RuntimeConfig::new().random_scheduling(seed).quantum(3);
            let mut rt = Runtime::with_config(cfg);
            let prog = Io::new_mvar(1_i64).and_then(|m| {
                let worker = modify_mvar(m, |n| Io::compute(100).then(Io::pure(n + 1)))
                    .catch(|_| Io::unit());
                Io::fork(worker).and_then(move |w| {
                    Io::throw_to(w, Exception::kill_thread())
                        .then(Io::sleep(10_000))
                        .then(m.try_take())
                })
            });
            let result = rt.run(prog).unwrap();
            assert!(
                result.is_some(),
                "seed {seed}: lock lost despite block/unblock protection"
            );
        }
    }

    #[test]
    fn masked_modify_ignores_exception_until_done() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(0_i64).and_then(|m| {
            let worker = modify_mvar_masked(m, |n| Io::compute(500).then(Io::pure(n + 1)))
                .catch(|_| Io::unit());
            Io::<ThreadId>::block(Io::fork(worker)).and_then(move |w| {
                Io::throw_to(w, Exception::kill_thread())
                    .then(Io::sleep(10))
                    .then(m.try_take())
            })
        });
        // The masked update always completes: the state is the *new* value.
        assert_eq!(rt.run(prog).unwrap(), Some(1));
    }
}
