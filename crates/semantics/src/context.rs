//! Evaluation contexts — §6.2 and the split-level contexts of §6.3.
//!
//! The base semantics uses `E ::= [·] | E >>= M | catch E M`. §6.3 splits
//! the contexts to track masking:
//!
//! ```text
//! Ê ::= [·] | Ê >>= M | catch Ê M
//! E ::= Ê | Ê[block E] | Ê[unblock E]
//! ```
//!
//! so that a thread's term decomposes as a stack of context frames around
//! a redex, and whether the *innermost* surrounding `block`/`unblock` is
//! a `block` determines if the thread is masked. The paper's convention
//! that contexts be *maximal* corresponds to [`decompose`] recursing as
//! deep as the grammar allows; the side condition `M ≠ block N` on rule
//! (Receive) is then automatic.

use std::rc::Rc;

use crate::term::Term;

/// One frame of an evaluation context, innermost-last in a
/// [`Decomposition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtxFrame {
    /// `[·] >>= M`.
    BindK(Rc<Term>),
    /// `catch [·] H`.
    CatchH(Rc<Term>),
    /// `block [·]`.
    Block,
    /// `unblock [·]`.
    Unblock,
}

/// A maximal decomposition of a thread's term into context frames and a
/// redex.
///
/// Invariant: the redex is never itself `Bind`, `Catch`, `Block` or
/// `Unblock` (those always open a frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// Context frames, outermost first.
    pub frames: Vec<CtxFrame>,
    /// The term at the evaluation site.
    pub redex: Rc<Term>,
}

impl Decomposition {
    /// Is the evaluation site masked — i.e. is the innermost enclosing
    /// `block`/`unblock` frame a `block`?
    ///
    /// A thread with no mask frames at all is unmasked: threads start in
    /// the unblocked state (§5.2).
    pub fn masked(&self) -> bool {
        for f in self.frames.iter().rev() {
            match f {
                CtxFrame::Block => return true,
                CtxFrame::Unblock => return false,
                CtxFrame::BindK(_) | CtxFrame::CatchH(_) => {}
            }
        }
        false
    }

    /// The innermost frame, if any.
    pub fn innermost(&self) -> Option<&CtxFrame> {
        self.frames.last()
    }

    /// Rebuilds the whole term with `new_redex` plugged into the hole.
    pub fn plug(&self, new_redex: Rc<Term>) -> Rc<Term> {
        let mut t = new_redex;
        for f in self.frames.iter().rev() {
            t = match f {
                CtxFrame::BindK(k) => Rc::new(Term::Bind(t, Rc::clone(k))),
                CtxFrame::CatchH(h) => Rc::new(Term::Catch(t, Rc::clone(h))),
                CtxFrame::Block => Rc::new(Term::Block(t)),
                CtxFrame::Unblock => Rc::new(Term::Unblock(t)),
            };
        }
        t
    }

    /// Rebuilds with the innermost frame removed and `new_redex` plugged
    /// where the frame's *contents* were — the shape of rules like
    /// (Bind), (Catch) and (Block Return), which consume one frame.
    pub fn pop_plug(&self, new_redex: Rc<Term>) -> Rc<Term> {
        assert!(!self.frames.is_empty(), "pop_plug on a frameless context");
        let popped = Decomposition {
            frames: self.frames[..self.frames.len() - 1].to_vec(),
            redex: Rc::clone(&self.redex),
        };
        popped.plug(new_redex)
    }
}

/// Maximally decomposes `term` into evaluation context and redex.
pub fn decompose(term: &Rc<Term>) -> Decomposition {
    let mut frames = Vec::new();
    let mut cur = Rc::clone(term);
    loop {
        let next = match &*cur {
            Term::Bind(m, k) => {
                frames.push(CtxFrame::BindK(Rc::clone(k)));
                Rc::clone(m)
            }
            Term::Catch(m, h) => {
                frames.push(CtxFrame::CatchH(Rc::clone(h)));
                Rc::clone(m)
            }
            Term::Block(m) => {
                frames.push(CtxFrame::Block);
                Rc::clone(m)
            }
            Term::Unblock(m) => {
                frames.push(CtxFrame::Unblock);
                Rc::clone(m)
            }
            _ => break,
        };
        cur = next;
    }
    Decomposition { frames, redex: cur }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::build::*;

    #[test]
    fn trivial_decomposition() {
        let d = decompose(&ret(unit()));
        assert!(d.frames.is_empty());
        assert_eq!(d.redex, ret(unit()));
        assert!(!d.masked());
    }

    #[test]
    fn bind_spine() {
        // (getChar >>= k1) >>= k2 decomposes to getChar under two frames.
        let t = bind(bind(get_char(), var("k1")), var("k2"));
        let d = decompose(&t);
        assert_eq!(d.frames.len(), 2);
        assert_eq!(*d.redex, crate::term::Term::GetChar);
        assert_eq!(d.frames[0], CtxFrame::BindK(var("k2")));
        assert_eq!(d.frames[1], CtxFrame::BindK(var("k1")));
    }

    #[test]
    fn catch_opens_a_frame() {
        let t = catch(get_char(), var("h"));
        let d = decompose(&t);
        assert_eq!(d.frames, vec![CtxFrame::CatchH(var("h"))]);
    }

    #[test]
    fn masked_inside_block() {
        let t = block(bind(get_char(), var("k")));
        let d = decompose(&t);
        assert!(d.masked());
    }

    #[test]
    fn innermost_mask_wins() {
        // block (unblock M): unmasked at the redex.
        let t = block(unblock(get_char()));
        assert!(!decompose(&t).masked());
        // unblock (block M): masked.
        let t2 = unblock(block(get_char()));
        assert!(decompose(&t2).masked());
    }

    #[test]
    fn mask_state_looks_through_bind_frames() {
        // block (unblock M >>= k): the redex of the whole term is inside
        // unblock's body only if decomposition enters unblock — here the
        // bind is *inside* block but *outside* unblock... build:
        // block( (unblock getChar) >>= k )
        let t = block(bind(unblock(get_char()), var("k")));
        let d = decompose(&t);
        // frames: Block, BindK(k), Unblock — innermost mask frame is
        // Unblock, so the redex is unmasked.
        assert_eq!(
            d.frames,
            vec![
                CtxFrame::Block,
                CtxFrame::BindK(var("k")),
                CtxFrame::Unblock
            ]
        );
        assert!(!d.masked());
    }

    #[test]
    fn plug_round_trips() {
        let t = block(bind(unblock(get_char()), var("k")));
        let d = decompose(&t);
        assert_eq!(d.plug(Rc::clone(&d.redex)), t);
    }

    #[test]
    fn pop_plug_removes_innermost_frame() {
        // decomposing `getChar >>= k` and pop-plugging `return 'x' >>= k`'s
        // replacement: (Bind)-style rewrites.
        let t = bind(ret(ch('x')), var("k"));
        let d = decompose(&t);
        assert_eq!(d.frames.len(), 1);
        let rebuilt = d.pop_plug(app(var("k"), ch('x')));
        assert_eq!(rebuilt, app(var("k"), ch('x')));
    }

    #[test]
    fn redex_is_never_a_context_former() {
        let t = block(unblock(bind(
            catch(bind(get_char(), var("a")), var("h")),
            var("b"),
        )));
        let d = decompose(&t);
        assert!(!matches!(
            &*d.redex,
            crate::term::Term::Bind(_, _)
                | crate::term::Term::Catch(_, _)
                | crate::term::Term::Block(_)
                | crate::term::Term::Unblock(_)
        ));
    }

    #[test]
    #[should_panic(expected = "frameless")]
    fn pop_plug_on_empty_context_panics() {
        let d = decompose(&ret(unit()));
        let _ = d.pop_plug(unit());
    }
}
